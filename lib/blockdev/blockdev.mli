(** Block device: the file systems' view of storage.

    Presents fixed-size blocks over either a simulated {!Cffs_disk.Drive}
    (timed) or plain memory (untimed, for unit tests).  Contiguous multi-block
    transfers become single disk requests — the scatter/gather capability the
    paper's driver provides and explicit grouping depends on.  Batched writes
    are ordered by the configured scheduling policy (C-LOOK by default) before
    being issued, as the paper's C-LOOK driver queue would. *)

type t

(** What the fault injector decides about one request.  [Torn k] (writes
    only) persists the first [k] 512-byte sectors of the request and then
    fails with [Power_cut] — a tear is only ever caused by losing power
    mid-request.  [Fail c] persists nothing and raises
    {!Cffs_util.Io_error.E} with cause [c]. *)
type outcome = Proceed | Torn of int | Fail of Cffs_util.Io_error.cause

type injector = Cffs_util.Io_error.op -> blk:int -> nblocks:int -> outcome

type write_observer = blk:int -> data:bytes -> torn:int option -> unit
(** Called once per write request that persisted anything, after the store:
    [blk] is the request's first block, [data] the full intended payload
    (one or more whole blocks), [torn] the number of sectors that actually
    reached the media when the request tore ([None] when it completed). *)

val of_drive :
  ?policy:Cffs_disk.Scheduler.policy ->
  ?host_overhead:float ->
  Cffs_disk.Drive.t ->
  block_size:int ->
  t
(** Timed device.  [block_size] must be a positive multiple of 512.
    [host_overhead] (seconds, default 0.5 ms) is the host-side cost charged
    per disk request — driver, SCSI command set-up and interrupt handling on
    a mid-90s CPU.  It advances the clock before the drive services the
    request, so it also produces the rotational slip a real host induces. *)

val memory : block_size:int -> nblocks:int -> t
(** Untimed in-memory device. *)

val multi : subs:t array -> extents:(int * int * int * int) list -> t
(** [multi ~subs ~extents] builds a composite device presenting one logical
    block space mapped onto the given subdevices (simulated spindles) by an
    extent table.  Each extent is [(lstart, len, sub, pstart)]: logical
    blocks [lstart, lstart+len) live at physical blocks [pstart, pstart+len)
    of subdevice [sub].  Extents must tile the logical space contiguously
    from 0 and must not overlap on any subdevice; subdevices must share one
    block size and must not themselves be composites.

    Each subdevice keeps its own tagged queue, so scheduling, coalescing and
    fault isolation apply per-spindle; the composite clock is the {e maximum}
    of the sub clocks (spindles service their queues concurrently), and a
    synchronous operation on the composite first syncs every spindle to that
    clock — so batched drains overlap across spindles while dependent
    operations serialize.  Requests are split at extent boundaries and
    reassembled on completion; a fragment failure fails only its parent.

    The constructor installs translating fault hooks on every subdevice:
    {!set_injector} / {!set_write_observer} on the composite see {e logical}
    addresses regardless of which spindle serviced the request, so
    {!Faultdev} and {!Integrity} attach to a composite unchanged, and a
    materialized crash image is an ordinary flat device image (power cuts
    stop every spindle at one global request boundary — the injector goes
    dead for all of them).  Do not install hooks directly on a composite's
    subdevices. *)

val subdevices : t -> t array
(** The composite's subdevices in extent order ([[||]] for plain devices) —
    for per-spindle telemetry and tests; submitting I/O directly to a
    subdevice that also serves a composite is not supported. *)

val block_size : t -> int
val nblocks : t -> int

val set_injector : t -> injector option -> unit
(** Install (or clear) the fault-decision hook consulted once per request.
    {!Faultdev} is the intended client; tests may install their own. *)

val set_write_observer : t -> write_observer option -> unit
(** Install (or clear) the per-write-request notification hook. *)

(** {2 Integrity tags}

    Out-of-band per-block CRC tags, the software analogue of T10-DIF /
    520-byte-sector protection information.  When enabled, every fully
    persisted block atomically records the CRC-32 of its new contents; a
    torn request leaves the {e old} tag behind, and
    {!corrupt_block} leaves the tag stale — both making the damage
    detectable.  The device only {e stores} tags; verification and the
    at-rest on-disk encoding live in {!Integrity}. *)

val enable_tags : t -> unit
(** Start maintaining tags (idempotent; off by default — untagged devices
    pay no overhead). *)

val tags_enabled : t -> bool

val tag : t -> int -> int option
(** The recorded tag for a block, or [None] if the block was never written
    while tags were enabled (unverifiable, treated as trusted). *)

val set_tag : t -> int -> int -> unit
(** Install a tag directly — used by {!Integrity} to reload the at-rest
    checksum region into the live table after {!load_file}. *)

val tag_count : t -> int

val read : t -> int -> int -> bytes
(** [read t blk n] reads [n] consecutive blocks as one request.  Unwritten
    blocks read as zeros.  Raises {!Cffs_util.Io_error.E} with cause
    [Out_of_bounds] when the range lies outside the device, or with the
    injector's cause when the configured fault layer fails the request. *)

(** {2 The tagged-queue pipeline}

    All I/O flows through a tagged command queue ({!Cffs_disk.Ioqueue}):
    submissions join an arrival FIFO, are promoted into a window of at
    most the configured depth, and dispatch in scheduler order —
    optionally coalescing physically adjacent same-kind requests into one
    contiguous transfer.  The synchronous operations above are submit +
    drain of a single tag, and {!write_batch_units} submits every unit
    before draining, so per-mount depth/policy/coalescing settings govern
    the whole I/O path.  Defaults preserve the classic behaviour: an
    unbounded window (the scheduler sees whole batches), the policy given
    to {!of_drive} (FIFO for memory devices), and no coalescing. *)

type cqe = {
  cq_tag : Cffs_disk.Ioqueue.tag;
  cq_op : Cffs_util.Io_error.op;
  cq_blk : int;
  cq_nblocks : int;
  cq_result : (bytes, Cffs_util.Io_error.t) result;
      (** [Ok data] for reads, [Ok Bytes.empty] for writes.  A failed
          request reports its error here — it is {e not} raised; only the
          failed tag's waiter is affected. *)
}
(** Completion of one tagged request. *)

val set_queue :
  t ->
  ?depth:int ->
  ?policy:Cffs_disk.Scheduler.policy ->
  ?coalesce:bool ->
  unit ->
  unit
(** Reconfigure the mount's queue: window depth (>= 1), scheduling policy
    and adjacent-request coalescing.  Omitted settings are unchanged. *)

val queue_depth : t -> int
val queue_policy : t -> Cffs_disk.Scheduler.policy
val queue_coalesce : t -> bool

val pending : t -> int
(** Requests submitted but not yet serviced. *)

val submit_read : t -> int -> int -> Cffs_disk.Ioqueue.tag
(** [submit_read t blk n] enqueues a read of [n] consecutive blocks.
    Raises {!Cffs_util.Io_error.E} ([Out_of_bounds]) on a bad range;
    device faults are reported on the completion, not raised. *)

val submit_write : t -> int -> bytes -> Cffs_disk.Ioqueue.tag
(** [submit_write t blk data] enqueues a write of
    [length data / block_size] consecutive blocks. *)

val drain : t -> cqe list
(** Service everything pending and return all completions (submission
    faults included) in completion order.  A [Power_cut] outcome stops
    the device: later queued requests fail with [Power_cut] without
    touching the media.  A coalesced dispatch that fails with a retryable
    cause is re-serviced member by member, so only the tag covering the
    fault fails. *)

val reset_queue : t -> int
(** Tear the queue down: every pending request fails its waiter with
    [Power_cut] (reported by the next {!drain}) without touching the
    media.  Returns how many were discarded. *)

val write : t -> int -> bytes -> unit
(** [write t blk data] writes [length data / block_size] consecutive blocks
    as one request, synchronously.  Raises {!Cffs_util.Io_error.E} on
    out-of-bounds ranges and injected faults, like {!read}. *)

val write_batch : t -> (int * bytes) list -> unit
(** Write single blocks, one request each, issued in scheduler order.
    Deliberately {e no} automatic coalescing: whether adjacent dirty blocks
    travel as one request is a file-system policy (FFS clusters only
    sequential blocks of one file; C-FFS also writes whole groups) — see
    {!write_batch_units}. *)

val write_batch_units : t -> (int * bytes list) list -> unit
(** [write_batch_units t units] writes each unit — a physically contiguous
    run [(first_block, blocks)] — as a single scatter/gather request, in
    scheduler order.  Each request persists as it is serviced, so an
    injected fault mid-batch leaves exactly the already-serviced prefix on
    the media and raises {!Cffs_util.Io_error.E}. *)

val store_raw : t -> int -> bytes -> keep_sectors:int option -> unit
(** [store_raw t blk data ~keep_sectors] deposits data directly in the
    store: no request accounting, no injector, no observer.  With
    [keep_sectors = Some k] only the first [k] sectors land (a recorded
    tear).  This is the journal-replay primitive {!Faultdev.materialize}
    uses to rebuild crash images. *)

val now : t -> float
(** Simulated time (always [0.] for memory devices). *)

val advance : t -> float -> unit
(** Account CPU/think time. *)

val stats : t -> Cffs_disk.Request.Stats.s
(** Live request counters.  Both backends count reads/writes/sectors
    uniformly; the timing fields ([busy_time], [seek_time], ...) stay zero
    for memory devices, which have no mechanics to account. *)

val drive : t -> Cffs_disk.Drive.t option

val flush_device_cache : t -> unit
(** Drop the drive's on-board cache (cold-cache measurements). *)

(** Raw stored contents, for crash simulation: a snapshot captures exactly
    the blocks that reached the device — and their integrity tags, which
    live with the media — so restoring yields a device whose contents are
    the snapshot (queued/cached data above the device is lost, which is
    the crash semantics). *)
type image

val snapshot : t -> image
val restore : t -> image -> unit
val blocks_written : image -> int
(** Number of distinct blocks present in the image. *)

val write_torn : t -> int -> bytes -> keep_sectors:int -> unit
(** [write_torn t blk data ~keep_sectors] simulates a write interrupted by a
    power failure: only the first [keep_sectors] 512-byte sectors of the
    block reach the media; the rest keeps its previous contents.  Sectors
    themselves are atomic — the assumption C-FFS builds its name+inode
    atomicity on. *)

val corrupt_block : t -> int -> Cffs_util.Prng.t -> unit
(** Overwrite one block with random bytes (media-corruption injection for
    fsck tests). *)

val save_file : t -> string -> unit
(** Write the device contents to a raw image file of [nblocks x block_size]
    bytes (sparse where blocks were never written). *)

val load_file : ?block_size:int -> string -> t
(** Load a raw image file into a fresh memory device; the block count is the
    file size divided by [block_size] (default 4096).  All-zero blocks are
    not materialised.  Raises [Sys_error]/[Invalid_argument] on unusable
    files. *)
