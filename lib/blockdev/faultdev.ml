module Io_error = Cffs_util.Io_error
module Prng = Cffs_util.Prng

let m_transient = Cffs_obs.Registry.counter "faultdev.transient_reads"
let m_bad = Cffs_obs.Registry.counter "faultdev.bad_sector_errors"
let m_torn = Cffs_obs.Registry.counter "faultdev.torn_writes"
let m_cuts = Cffs_obs.Registry.counter "faultdev.power_cuts"

type entry = { seq : int; blk : int; data : bytes; torn : int option }

type t = {
  dev : Blockdev.t;
  prng : Prng.t;
  mutable base : Blockdev.image;
  mutable base_seq : int;  (* journal entries below this are folded into base *)
  mutable transient_read_rate : float;
  bad : (int, unit) Hashtbl.t;
  mutable tear_at : (int * int) option;  (* (write request seq, keep sectors) *)
  mutable cut_at : int option;  (* power cut before this write request seq *)
  mutable dead : bool;
  mutable writes_attempted : int;
  mutable journal_rev : entry list;
  mutable journal_len : int;
}

let range_bad t blk n =
  let rec go i = i < n && (Hashtbl.mem t.bad (blk + i) || go (i + 1)) in
  go 0

let injector t : Blockdev.injector =
 fun op ~blk ~nblocks ->
  if t.dead then Blockdev.Fail Io_error.Power_cut
  else begin
    match op with
    | Io_error.Read ->
        if range_bad t blk nblocks then begin
          Cffs_obs.Registry.incr m_bad;
          Blockdev.Fail Io_error.Bad_sector
        end
        else if
          t.transient_read_rate > 0.0 && Prng.chance t.prng t.transient_read_rate
        then begin
          Cffs_obs.Registry.incr m_transient;
          Blockdev.Fail Io_error.Transient
        end
        else Blockdev.Proceed
    | Io_error.Write ->
        let seq = t.writes_attempted in
        t.writes_attempted <- seq + 1;
        let cut = match t.cut_at with Some s -> seq >= s | None -> false in
        if cut then begin
          t.dead <- true;
          Cffs_obs.Registry.incr m_cuts;
          Blockdev.Fail Io_error.Power_cut
        end
        else if range_bad t blk nblocks then begin
          Cffs_obs.Registry.incr m_bad;
          Blockdev.Fail Io_error.Bad_sector
        end
        else begin
          match t.tear_at with
          | Some (s, k) when s = seq ->
              t.dead <- true;
              Cffs_obs.Registry.incr m_torn;
              Cffs_obs.Registry.incr m_cuts;
              Blockdev.Torn k
          | _ -> Blockdev.Proceed
        end
  end

let observer t : Blockdev.write_observer =
 fun ~blk ~data ~torn ->
  let e = { seq = t.journal_len; blk; data = Bytes.copy data; torn } in
  t.journal_rev <- e :: t.journal_rev;
  t.journal_len <- t.journal_len + 1

let attach ?(seed = 0) dev =
  let t =
    {
      dev;
      prng = Prng.create seed;
      base = Blockdev.snapshot dev;
      base_seq = 0;
      transient_read_rate = 0.0;
      bad = Hashtbl.create 8;
      tear_at = None;
      cut_at = None;
      dead = false;
      writes_attempted = 0;
      journal_rev = [];
      journal_len = 0;
    }
  in
  Blockdev.set_injector dev (Some (injector t));
  Blockdev.set_write_observer dev (Some (observer t));
  t

let detach t =
  Blockdev.set_injector t.dev None;
  Blockdev.set_write_observer t.dev None

let device t = t.dev
let set_transient_read_rate t r = t.transient_read_rate <- max 0.0 r
let mark_bad t blk = Hashtbl.replace t.bad blk ()
let clear_bad t blk = Hashtbl.remove t.bad blk
let tear_write t ~seq ~keep_sectors = t.tear_at <- Some (seq, keep_sectors)
let cut_power_at t ~seq = t.cut_at <- Some seq

let cut_power_now t =
  t.dead <- true;
  Cffs_obs.Registry.incr m_cuts

let alive t = not t.dead

let revive t =
  t.dead <- false;
  t.tear_at <- None;
  t.cut_at <- None

let writes_attempted t = t.writes_attempted
let journal_length t = t.journal_len
let journal_entries t = List.length t.journal_rev
let barrier_seq t = t.base_seq
let journal t = List.rev t.journal_rev

let entry_sectors _t e = Bytes.length e.data / Cffs_util.Units.sector_size

let fresh_replay_device t =
  let dev =
    Blockdev.memory
      ~block_size:(Blockdev.block_size t.dev)
      ~nblocks:(Blockdev.nblocks t.dev)
  in
  Blockdev.restore dev t.base;
  dev

(* Fold every journaled write into the base snapshot and drop the entries:
   the memory held by the journal is bounded by the writes since the last
   barrier, not the whole run.  Sequence numbers stay absolute, so
   [materialize ~upto] keeps working for [upto >= barrier_seq]; crash
   points before the barrier can no longer be rebuilt — call this only at
   a sync barrier, where everything earlier is durable by definition. *)
let barrier t =
  if t.journal_rev <> [] then begin
    let dev = fresh_replay_device t in
    List.iter
      (fun e -> Blockdev.store_raw dev e.blk e.data ~keep_sectors:e.torn)
      (journal t);
    t.base <- Blockdev.snapshot dev;
    t.base_seq <- t.journal_len;
    t.journal_rev <- []
  end

let materialize ?tear t ~upto =
  let dev = fresh_replay_device t in
  let upto = max 0 (min upto t.journal_len) in
  List.iter
    (fun e ->
      if e.seq < upto then Blockdev.store_raw dev e.blk e.data ~keep_sectors:e.torn
      else if e.seq = upto then begin
        match tear with
        | Some k ->
            let k =
              match e.torn with Some persisted -> min k persisted | None -> k
            in
            Blockdev.store_raw dev e.blk e.data ~keep_sectors:(Some k)
        | None -> ()
      end)
    (journal t);
  dev
