open Cffs_disk
module Io_error = Cffs_util.Io_error

(* Uniform request accounting for both backends; the timed backend's drive
   additionally keeps its own (timed) [Request.Stats]. *)
let m_reads = Cffs_obs.Registry.counter "blockdev.reads"
let m_writes = Cffs_obs.Registry.counter "blockdev.writes"
let m_read_sectors = Cffs_obs.Registry.counter "blockdev.read_sectors"
let m_write_sectors = Cffs_obs.Registry.counter "blockdev.write_sectors"
let m_io_errors = Cffs_obs.Registry.counter "blockdev.io_errors"

type backend =
  | Memory of { mutable clock : float; stats : Request.Stats.s }
  | Timed of { drive : Drive.t; policy : Scheduler.policy; host_overhead : float }

type outcome = Proceed | Torn of int | Fail of Io_error.cause
type injector = Io_error.op -> blk:int -> nblocks:int -> outcome
type write_observer = blk:int -> data:bytes -> torn:int option -> unit

type t = {
  backend : backend;
  store : (int, bytes) Hashtbl.t;
  block_size : int;
  nblocks : int;
  mutable injector : injector option;
  mutable write_observer : write_observer option;
  (* Out-of-band per-block integrity tags, the software analogue of
     T10-DIF / 520-byte-sector protection information: a tag travels with
     the block through the same request that persists it, so the pair is
     updated atomically and a torn request leaves the old tag in place —
     which is exactly what makes the tear detectable.  Maintained only
     when [tags_enabled]; the Integrity layer owns the at-rest encoding
     (the on-disk checksum region) and all verification. *)
  tags : (int, int) Hashtbl.t;
  mutable tags_enabled : bool;
}

type image = {
  img_blocks : (int, bytes) Hashtbl.t;
  img_tags : (int, int) Hashtbl.t;
  img_tags_enabled : bool;
}

let sectors_per_block t = t.block_size / Cffs_util.Units.sector_size

let of_drive ?(policy = Scheduler.Clook) ?(host_overhead = 0.5e-3) drive ~block_size =
  if block_size <= 0 || block_size mod Cffs_util.Units.sector_size <> 0 then
    invalid_arg "Blockdev.of_drive: block size";
  let nblocks = Drive.total_sectors drive * Cffs_util.Units.sector_size / block_size in
  {
    backend = Timed { drive; policy; host_overhead };
    store = Hashtbl.create 4096;
    block_size;
    nblocks;
    injector = None;
    write_observer = None;
    tags = Hashtbl.create 64;
    tags_enabled = false;
  }

let memory ~block_size ~nblocks =
  if block_size <= 0 || nblocks <= 0 then invalid_arg "Blockdev.memory";
  {
    backend = Memory { clock = 0.0; stats = Request.Stats.create () };
    store = Hashtbl.create 4096;
    block_size;
    nblocks;
    injector = None;
    write_observer = None;
    tags = Hashtbl.create 64;
    tags_enabled = false;
  }

let block_size t = t.block_size
let nblocks t = t.nblocks
let set_injector t inj = t.injector <- inj
let set_write_observer t obs = t.write_observer <- obs
let enable_tags t = t.tags_enabled <- true
let tags_enabled t = t.tags_enabled
let tag t blk = Hashtbl.find_opt t.tags blk
let set_tag t blk v = Hashtbl.replace t.tags blk v
let tag_count t = Hashtbl.length t.tags

let check_range t op blk n =
  if blk < 0 || n <= 0 || blk + n > t.nblocks then
    let spb = t.block_size / Cffs_util.Units.sector_size in
    Io_error.raise_error ~op ~blk ~nblocks:n
      ~range:
        {
          Io_error.start_sector = blk * spb;
          sector_count = n * spb;
          dev_sectors = t.nblocks * spb;
          dev_blocks = t.nblocks;
        }
      Io_error.Out_of_bounds

let consult t op ~blk ~nblocks =
  match t.injector with None -> Proceed | Some f -> f op ~blk ~nblocks

let fail _t op ~blk ~nblocks cause =
  Cffs_obs.Registry.incr m_io_errors;
  Io_error.raise_error ~op ~blk ~nblocks cause

let copy_out t blk dst off =
  match Hashtbl.find_opt t.store blk with
  | Some b -> Bytes.blit b 0 dst off t.block_size
  | None -> Bytes.fill dst off t.block_size '\000'

let store_block t blk src off =
  let b =
    match Hashtbl.find_opt t.store blk with
    | Some b -> b
    | None ->
        let b = Bytes.create t.block_size in
        Hashtbl.replace t.store blk b;
        b
  in
  Bytes.blit src off b 0 t.block_size

(* Persist a write request's payload, possibly torn: only the first
   [keep_sectors] 512-byte sectors reach the media, the rest of the range
   keeps its previous contents.  Sectors are atomic — the assumption C-FFS
   builds its name+inode atomicity on.

   Tag discipline: a fully persisted block gets the CRC of its new
   contents; a torn block keeps its {e old} tag — the request died before
   the out-of-band tag could be updated — so unless the mixed contents
   happen to equal the previous contents, a later verified read flags the
   tear. *)
let persist_request t start data ~keep_sectors =
  let ss = Cffs_util.Units.sector_size in
  let spb = sectors_per_block t in
  let n = Bytes.length data / t.block_size in
  let keep =
    match keep_sectors with
    | None -> n * spb
    | Some k -> max 0 (min (n * spb) k)
  in
  let full = keep / spb in
  for i = 0 to full - 1 do
    store_block t (start + i) data (i * t.block_size);
    if t.tags_enabled then
      Hashtbl.replace t.tags (start + i)
        (Cffs_util.Crc32.digest_sub data (i * t.block_size) t.block_size)
  done;
  let rem = keep mod spb in
  if rem > 0 then begin
    let old = Bytes.create t.block_size in
    copy_out t (start + full) old 0;
    Bytes.blit data (full * t.block_size) old 0 (rem * ss);
    store_block t (start + full) old 0
  end

let time_request t (req : Request.t) =
  (match req.kind with
  | Read ->
      Cffs_obs.Registry.incr m_reads;
      Cffs_obs.Registry.incr ~by:req.sectors m_read_sectors
  | Write ->
      Cffs_obs.Registry.incr m_writes;
      Cffs_obs.Registry.incr ~by:req.sectors m_write_sectors);
  match t.backend with
  | Memory m -> (
      let s = m.stats in
      match req.kind with
      | Read ->
          s.reads <- s.reads + 1;
          s.read_sectors <- s.read_sectors + req.sectors
      | Write ->
          s.writes <- s.writes + 1;
          s.write_sectors <- s.write_sectors + req.sectors)
  | Timed { drive; host_overhead; _ } ->
      Drive.advance drive host_overhead;
      ignore (Drive.service drive req)

let read t blk n =
  check_range t Io_error.Read blk n;
  let spb = sectors_per_block t in
  let outcome = consult t Io_error.Read ~blk ~nblocks:n in
  time_request t (Request.read ~lba:(blk * spb) ~sectors:(n * spb));
  (match outcome with
  | Proceed | Torn _ -> ()
  | Fail cause -> fail t Io_error.Read ~blk ~nblocks:n cause);
  let out = Bytes.create (n * t.block_size) in
  for i = 0 to n - 1 do
    copy_out t (blk + i) out (i * t.block_size)
  done;
  out

(* One write request: consult the fault injector, account the request, then
   persist.  A torn request persists its prefix and then fails with
   [Power_cut] — a tear is only ever caused by losing power mid-request, so
   nothing after it completes either.  The write observer sees every request
   that persisted anything (full or torn), with the full intended payload. *)
let write_request t start data =
  let n = Bytes.length data / t.block_size in
  let spb = sectors_per_block t in
  let outcome = consult t Io_error.Write ~blk:start ~nblocks:n in
  (match outcome with
  | Fail Io_error.Power_cut -> ()
  | _ -> time_request t (Request.write ~lba:(start * spb) ~sectors:(n * spb)));
  match outcome with
  | Proceed ->
      persist_request t start data ~keep_sectors:None;
      (match t.write_observer with
      | Some f -> f ~blk:start ~data ~torn:None
      | None -> ())
  | Torn k ->
      let keep = max 0 (min (n * spb) k) in
      persist_request t start data ~keep_sectors:(Some keep);
      (match t.write_observer with
      | Some f -> f ~blk:start ~data ~torn:(Some keep)
      | None -> ());
      fail t Io_error.Write ~blk:start ~nblocks:n Io_error.Power_cut
  | Fail cause -> fail t Io_error.Write ~blk:start ~nblocks:n cause

let write t blk data =
  let len = Bytes.length data in
  if len mod t.block_size <> 0 then invalid_arg "Blockdev.write: partial block";
  let n = len / t.block_size in
  check_range t Io_error.Write blk n;
  write_request t blk data

(* Issue a set of contiguous units, each as one request, in scheduler order.
   Each request persists (and notifies the write observer) as it is serviced,
   so a failure mid-batch leaves exactly the already-serviced prefix on the
   media — the crash semantics the fault harness depends on.  The memory
   backend services units in the order given. *)
let issue_units t units =
  match units with
  | [] -> ()
  | _ ->
      let spb = sectors_per_block t in
      List.iter
        (fun (start, blocks) ->
          check_range t Io_error.Write start (List.length blocks))
        units;
      let ordered =
        match t.backend with
        | Memory _ -> units
        | Timed { drive; policy; _ } ->
            let by_lba =
              List.map (fun (start, blocks) -> (start * spb, (start, blocks))) units
            in
            let reqs =
              List.map
                (fun (start, blocks) ->
                  Request.write ~lba:(start * spb)
                    ~sectors:(List.length blocks * spb))
                units
            in
            Scheduler.order policy (Drive.geometry drive)
              ~current_cyl:(Drive.current_cyl drive) reqs
            |> List.map (fun (req : Request.t) -> List.assoc req.lba by_lba)
      in
      List.iter
        (fun (start, blocks) ->
          let n = List.length blocks in
          let data = Bytes.create (n * t.block_size) in
          List.iteri
            (fun i b -> Bytes.blit b 0 data (i * t.block_size) t.block_size)
            blocks;
          write_request t start data)
        ordered

let check_one_block t (blk, data) =
  if Bytes.length data <> t.block_size then
    invalid_arg "Blockdev.write_batch: data must be one block";
  check_range t Io_error.Write blk 1

let write_batch t blocks =
  List.iter (check_one_block t) blocks;
  issue_units t (List.map (fun (blk, data) -> (blk, [ data ])) blocks)

let write_batch_units t units =
  List.iter
    (fun (start, blocks) ->
      List.iteri (fun i data -> check_one_block t (start + i, data)) blocks)
    units;
  issue_units t units

let store_raw t blk data ~keep_sectors =
  let len = Bytes.length data in
  if len mod t.block_size <> 0 then invalid_arg "Blockdev.store_raw: partial block";
  check_range t Io_error.Write blk (len / t.block_size);
  persist_request t blk data ~keep_sectors

let now t =
  match t.backend with Memory m -> m.clock | Timed { drive; _ } -> Drive.now drive

let advance t dt =
  match t.backend with
  | Memory m -> m.clock <- m.clock +. dt
  | Timed { drive; _ } -> Drive.advance drive dt

let stats t =
  match t.backend with
  | Memory m -> m.stats
  | Timed { drive; _ } -> Drive.stats drive

let drive t = match t.backend with Memory _ -> None | Timed { drive; _ } -> Some drive

let flush_device_cache t =
  match t.backend with Memory _ -> () | Timed { drive; _ } -> Drive.flush_cache drive

let snapshot t =
  let blocks = Hashtbl.create (Hashtbl.length t.store) in
  Hashtbl.iter (fun k v -> Hashtbl.replace blocks k (Bytes.copy v)) t.store;
  {
    img_blocks = blocks;
    img_tags = Hashtbl.copy t.tags;
    img_tags_enabled = t.tags_enabled;
  }

let restore t img =
  Hashtbl.reset t.store;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.store k (Bytes.copy v)) img.img_blocks;
  Hashtbl.reset t.tags;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.tags k v) img.img_tags;
  t.tags_enabled <- t.tags_enabled || img.img_tags_enabled

let blocks_written img = Hashtbl.length img.img_blocks

let write_torn t blk data ~keep_sectors =
  check_range t Io_error.Write blk 1;
  if Bytes.length data <> t.block_size then invalid_arg "Blockdev.write_torn";
  persist_request t blk data ~keep_sectors:(Some keep_sectors)

let corrupt_block t blk prng =
  check_range t Io_error.Write blk 1;
  Hashtbl.replace t.store blk (Cffs_util.Prng.bytes prng t.block_size)

let save_file t path =
  let oc = open_out_bin path in
  (try
     (* Fix the file's extent first so unwritten tails stay sparse. *)
     seek_out oc ((t.nblocks * t.block_size) - 1);
     output_char oc '\000';
     Hashtbl.iter
       (fun blk data ->
         seek_out oc (blk * t.block_size);
         output_bytes oc data)
       t.store;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e)

let load_file ?(block_size = 4096) path =
  let ic = open_in_bin path in
  let t =
    try
      let len = in_channel_length ic in
      if len = 0 || len mod block_size <> 0 then
        invalid_arg "Blockdev.load_file: image size is not a block multiple";
      let nblocks = len / block_size in
      let t = memory ~block_size ~nblocks in
      let buf = Bytes.create block_size in
      let zero = Bytes.make block_size '\000' in
      for blk = 0 to nblocks - 1 do
        really_input ic buf 0 block_size;
        if not (Bytes.equal buf zero) then store_block t blk buf 0
      done;
      t
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  t
