open Cffs_disk

(* Uniform request accounting for both backends; the timed backend's drive
   additionally keeps its own (timed) [Request.Stats]. *)
let m_reads = Cffs_obs.Registry.counter "blockdev.reads"
let m_writes = Cffs_obs.Registry.counter "blockdev.writes"
let m_read_sectors = Cffs_obs.Registry.counter "blockdev.read_sectors"
let m_write_sectors = Cffs_obs.Registry.counter "blockdev.write_sectors"

type backend =
  | Memory of { mutable clock : float; stats : Request.Stats.s }
  | Timed of { drive : Drive.t; policy : Scheduler.policy; host_overhead : float }

type t = {
  backend : backend;
  store : (int, bytes) Hashtbl.t;
  block_size : int;
  nblocks : int;
}

type image = (int, bytes) Hashtbl.t

let sectors_per_block t = t.block_size / Cffs_util.Units.sector_size

let of_drive ?(policy = Scheduler.Clook) ?(host_overhead = 0.5e-3) drive ~block_size =
  if block_size <= 0 || block_size mod Cffs_util.Units.sector_size <> 0 then
    invalid_arg "Blockdev.of_drive: block size";
  let nblocks = Drive.total_sectors drive * Cffs_util.Units.sector_size / block_size in
  {
    backend = Timed { drive; policy; host_overhead };
    store = Hashtbl.create 4096;
    block_size;
    nblocks;
  }

let memory ~block_size ~nblocks =
  if block_size <= 0 || nblocks <= 0 then invalid_arg "Blockdev.memory";
  {
    backend = Memory { clock = 0.0; stats = Request.Stats.create () };
    store = Hashtbl.create 4096;
    block_size;
    nblocks;
  }

let block_size t = t.block_size
let nblocks t = t.nblocks

let check_range t blk n =
  if blk < 0 || n <= 0 || blk + n > t.nblocks then
    invalid_arg
      (Printf.sprintf "Blockdev: block range [%d, %d) out of [0, %d)" blk (blk + n)
         t.nblocks)

let copy_out t blk dst off =
  match Hashtbl.find_opt t.store blk with
  | Some b -> Bytes.blit b 0 dst off t.block_size
  | None -> Bytes.fill dst off t.block_size '\000'

let store_block t blk src off =
  let b =
    match Hashtbl.find_opt t.store blk with
    | Some b -> b
    | None ->
        let b = Bytes.create t.block_size in
        Hashtbl.replace t.store blk b;
        b
  in
  Bytes.blit src off b 0 t.block_size

let time_request t (req : Request.t) =
  (match req.kind with
  | Read ->
      Cffs_obs.Registry.incr m_reads;
      Cffs_obs.Registry.incr ~by:req.sectors m_read_sectors
  | Write ->
      Cffs_obs.Registry.incr m_writes;
      Cffs_obs.Registry.incr ~by:req.sectors m_write_sectors);
  match t.backend with
  | Memory m -> (
      let s = m.stats in
      match req.kind with
      | Read ->
          s.reads <- s.reads + 1;
          s.read_sectors <- s.read_sectors + req.sectors
      | Write ->
          s.writes <- s.writes + 1;
          s.write_sectors <- s.write_sectors + req.sectors)
  | Timed { drive; host_overhead; _ } ->
      Drive.advance drive host_overhead;
      ignore (Drive.service drive req)

let read t blk n =
  check_range t blk n;
  let spb = sectors_per_block t in
  time_request t (Request.read ~lba:(blk * spb) ~sectors:(n * spb));
  let out = Bytes.create (n * t.block_size) in
  for i = 0 to n - 1 do
    copy_out t (blk + i) out (i * t.block_size)
  done;
  out

let write t blk data =
  let len = Bytes.length data in
  if len mod t.block_size <> 0 then invalid_arg "Blockdev.write: partial block";
  let n = len / t.block_size in
  check_range t blk n;
  let spb = sectors_per_block t in
  time_request t (Request.write ~lba:(blk * spb) ~sectors:(n * spb));
  for i = 0 to n - 1 do
    store_block t (blk + i) data (i * t.block_size)
  done

(* Issue a set of contiguous units, each as one request, in scheduler
   order.  Data is stored after all timing so crash snapshots taken between
   batches see consistent content. *)
let issue_units t units =
  match units with
  | [] -> ()
  | _ ->
      let spb = sectors_per_block t in
      let reqs =
        List.map
          (fun (start, blocks) ->
            check_range t start (List.length blocks);
            Request.write ~lba:(start * spb) ~sectors:(List.length blocks * spb))
          units
      in
      let ordered =
        match t.backend with
        | Memory _ -> reqs
        | Timed { drive; policy; _ } ->
            Scheduler.order policy (Drive.geometry drive)
              ~current_cyl:(Drive.current_cyl drive) reqs
      in
      List.iter (time_request t) ordered;
      List.iter
        (fun (start, blocks) ->
          List.iteri (fun i data -> store_block t (start + i) data 0) blocks)
        units

let check_one_block t (blk, data) =
  if Bytes.length data <> t.block_size then
    invalid_arg "Blockdev.write_batch: data must be one block";
  check_range t blk 1

let write_batch t blocks =
  List.iter (check_one_block t) blocks;
  issue_units t (List.map (fun (blk, data) -> (blk, [ data ])) blocks)

let write_batch_units t units =
  List.iter
    (fun (start, blocks) ->
      List.iteri (fun i data -> check_one_block t (start + i, data)) blocks)
    units;
  issue_units t units

let now t =
  match t.backend with Memory m -> m.clock | Timed { drive; _ } -> Drive.now drive

let advance t dt =
  match t.backend with
  | Memory m -> m.clock <- m.clock +. dt
  | Timed { drive; _ } -> Drive.advance drive dt

let stats t =
  match t.backend with
  | Memory m -> m.stats
  | Timed { drive; _ } -> Drive.stats drive

let drive t = match t.backend with Memory _ -> None | Timed { drive; _ } -> Some drive

let flush_device_cache t =
  match t.backend with Memory _ -> () | Timed { drive; _ } -> Drive.flush_cache drive

let snapshot t =
  let img = Hashtbl.create (Hashtbl.length t.store) in
  Hashtbl.iter (fun k v -> Hashtbl.replace img k (Bytes.copy v)) t.store;
  img

let restore t img =
  Hashtbl.reset t.store;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.store k (Bytes.copy v)) img

let blocks_written img = Hashtbl.length img

let write_torn t blk data ~keep_sectors =
  check_range t blk 1;
  if Bytes.length data <> t.block_size then invalid_arg "Blockdev.write_torn";
  let ss = Cffs_util.Units.sector_size in
  let keep = max 0 (min (t.block_size / ss) keep_sectors) in
  let old = read t blk 1 in
  let merged = Bytes.copy old in
  Bytes.blit data 0 merged 0 (keep * ss);
  store_block t blk merged 0

let corrupt_block t blk prng =
  check_range t blk 1;
  Hashtbl.replace t.store blk (Cffs_util.Prng.bytes prng t.block_size)

let save_file t path =
  let oc = open_out_bin path in
  (try
     (* Fix the file's extent first so unwritten tails stay sparse. *)
     seek_out oc ((t.nblocks * t.block_size) - 1);
     output_char oc '\000';
     Hashtbl.iter
       (fun blk data ->
         seek_out oc (blk * t.block_size);
         output_bytes oc data)
       t.store;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e)

let load_file ?(block_size = 4096) path =
  let ic = open_in_bin path in
  let t =
    try
      let len = in_channel_length ic in
      if len = 0 || len mod block_size <> 0 then
        invalid_arg "Blockdev.load_file: image size is not a block multiple";
      let nblocks = len / block_size in
      let t = memory ~block_size ~nblocks in
      let buf = Bytes.create block_size in
      let zero = Bytes.make block_size '\000' in
      for blk = 0 to nblocks - 1 do
        really_input ic buf 0 block_size;
        if not (Bytes.equal buf zero) then store_block t blk buf 0
      done;
      t
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  t
