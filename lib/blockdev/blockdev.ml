open Cffs_disk
module Io_error = Cffs_util.Io_error

(* Uniform request accounting for both backends; the timed backend's drive
   additionally keeps its own (timed) [Request.Stats]. *)
let m_reads = Cffs_obs.Registry.counter "blockdev.reads"
let m_writes = Cffs_obs.Registry.counter "blockdev.writes"
let m_read_sectors = Cffs_obs.Registry.counter "blockdev.read_sectors"
let m_write_sectors = Cffs_obs.Registry.counter "blockdev.write_sectors"
let m_io_errors = Cffs_obs.Registry.counter "blockdev.io_errors"
let m_host = Cffs_obs.Registry.fcounter "blockdev.host_s"

type backend =
  | Memory of { mutable clock : float; stats : Request.Stats.s }
  | Timed of { drive : Drive.t; policy : Scheduler.policy; host_overhead : float }

type outcome = Proceed | Torn of int | Fail of Io_error.cause
type injector = Io_error.op -> blk:int -> nblocks:int -> outcome
type write_observer = blk:int -> data:bytes -> torn:int option -> unit

(* Payload carried through the tagged queue: reads want data back, writes
   carry the data in. *)
type qpayload = Pread | Pwrite of bytes

type cqe = {
  cq_tag : Ioqueue.tag;
  cq_op : Io_error.op;
  cq_blk : int;
  cq_nblocks : int;
  cq_result : (bytes, Io_error.t) result;
      (* [Ok data] for reads, [Ok Bytes.empty] for writes *)
}

type t = {
  backend : backend;
  store : (int, bytes) Hashtbl.t;
  block_size : int;
  nblocks : int;
  queue : qpayload Ioqueue.t;
  mutable completed : cqe list;  (* reverse completion order *)
  mutable injector : injector option;
  mutable write_observer : write_observer option;
  (* Out-of-band per-block integrity tags, the software analogue of
     T10-DIF / 520-byte-sector protection information: a tag travels with
     the block through the same request that persists it, so the pair is
     updated atomically and a torn request leaves the old tag in place —
     which is exactly what makes the tear detectable.  Maintained only
     when [tags_enabled]; the Integrity layer owns the at-rest encoding
     (the on-disk checksum region) and all verification. *)
  tags : (int, int) Hashtbl.t;
  mutable tags_enabled : bool;
}

type image = {
  img_blocks : (int, bytes) Hashtbl.t;
  img_tags : (int, int) Hashtbl.t;
  img_tags_enabled : bool;
}

let sectors_per_block t = t.block_size / Cffs_util.Units.sector_size

let of_drive ?(policy = Scheduler.Clook) ?(host_overhead = 0.5e-3) drive ~block_size =
  if block_size <= 0 || block_size mod Cffs_util.Units.sector_size <> 0 then
    invalid_arg "Blockdev.of_drive: block size";
  let nblocks = Drive.total_sectors drive * Cffs_util.Units.sector_size / block_size in
  {
    backend = Timed { drive; policy; host_overhead };
    store = Hashtbl.create 4096;
    block_size;
    nblocks;
    queue = Ioqueue.create ~policy ();
    completed = [];
    injector = None;
    write_observer = None;
    tags = Hashtbl.create 64;
    tags_enabled = false;
  }

let memory ~block_size ~nblocks =
  if block_size <= 0 || nblocks <= 0 then invalid_arg "Blockdev.memory";
  {
    backend = Memory { clock = 0.0; stats = Request.Stats.create () };
    store = Hashtbl.create 4096;
    block_size;
    nblocks;
    queue = Ioqueue.create ();
    completed = [];
    injector = None;
    write_observer = None;
    tags = Hashtbl.create 64;
    tags_enabled = false;
  }

let block_size t = t.block_size
let nblocks t = t.nblocks
let set_injector t inj = t.injector <- inj
let set_write_observer t obs = t.write_observer <- obs
let enable_tags t = t.tags_enabled <- true
let tags_enabled t = t.tags_enabled
let tag t blk = Hashtbl.find_opt t.tags blk
let set_tag t blk v = Hashtbl.replace t.tags blk v
let tag_count t = Hashtbl.length t.tags

let check_range t op blk n =
  if blk < 0 || n <= 0 || blk + n > t.nblocks then
    let spb = t.block_size / Cffs_util.Units.sector_size in
    Io_error.raise_error ~op ~blk ~nblocks:n
      ~range:
        {
          Io_error.start_sector = blk * spb;
          sector_count = n * spb;
          dev_sectors = t.nblocks * spb;
          dev_blocks = t.nblocks;
        }
      Io_error.Out_of_bounds

let consult t op ~blk ~nblocks =
  match t.injector with None -> Proceed | Some f -> f op ~blk ~nblocks

let copy_out t blk dst off =
  match Hashtbl.find_opt t.store blk with
  | Some b -> Bytes.blit b 0 dst off t.block_size
  | None -> Bytes.fill dst off t.block_size '\000'

let store_block t blk src off =
  let b =
    match Hashtbl.find_opt t.store blk with
    | Some b -> b
    | None ->
        let b = Bytes.create t.block_size in
        Hashtbl.replace t.store blk b;
        b
  in
  Bytes.blit src off b 0 t.block_size

(* Persist a write request's payload, possibly torn: only the first
   [keep_sectors] 512-byte sectors reach the media, the rest of the range
   keeps its previous contents.  Sectors are atomic — the assumption C-FFS
   builds its name+inode atomicity on.

   Tag discipline: a fully persisted block gets the CRC of its new
   contents; a torn block keeps its {e old} tag — the request died before
   the out-of-band tag could be updated — so unless the mixed contents
   happen to equal the previous contents, a later verified read flags the
   tear. *)
let persist_request t start data ~keep_sectors =
  let ss = Cffs_util.Units.sector_size in
  let spb = sectors_per_block t in
  let n = Bytes.length data / t.block_size in
  let keep =
    match keep_sectors with
    | None -> n * spb
    | Some k -> max 0 (min (n * spb) k)
  in
  let full = keep / spb in
  for i = 0 to full - 1 do
    store_block t (start + i) data (i * t.block_size);
    if t.tags_enabled then
      Hashtbl.replace t.tags (start + i)
        (Cffs_util.Crc32.digest_sub data (i * t.block_size) t.block_size)
  done;
  let rem = keep mod spb in
  if rem > 0 then begin
    let old = Bytes.create t.block_size in
    copy_out t (start + full) old 0;
    Bytes.blit data (full * t.block_size) old 0 (rem * ss);
    store_block t (start + full) old 0
  end

let time_request t (req : Request.t) =
  (match req.kind with
  | Read ->
      Cffs_obs.Registry.incr m_reads;
      Cffs_obs.Registry.incr ~by:req.sectors m_read_sectors
  | Write ->
      Cffs_obs.Registry.incr m_writes;
      Cffs_obs.Registry.incr ~by:req.sectors m_write_sectors);
  match t.backend with
  | Memory m -> (
      let s = m.stats in
      match req.kind with
      | Read ->
          s.reads <- s.reads + 1;
          s.read_sectors <- s.read_sectors + req.sectors
      | Write ->
          s.writes <- s.writes + 1;
          s.write_sectors <- s.write_sectors + req.sectors)
  | Timed { drive; host_overhead; _ } ->
      Cffs_obs.Registry.fadd m_host host_overhead;
      Drive.advance drive host_overhead;
      ignore (Drive.service drive req)

let dev_now t =
  match t.backend with Memory m -> m.clock | Timed { drive; _ } -> Drive.now drive

let err op ~blk ~nblocks cause =
  { Io_error.op; blk; nblocks; cause; range = None }

(* One read request against the media: consult the fault injector, account
   the request (reads are timed even when they fail — the head still moved),
   then copy out. *)
let read_service t blk n : (bytes, Io_error.t) result =
  let spb = sectors_per_block t in
  let outcome = consult t Io_error.Read ~blk ~nblocks:n in
  time_request t (Request.read ~lba:(blk * spb) ~sectors:(n * spb));
  match outcome with
  | Proceed | Torn _ ->
      let out = Bytes.create (n * t.block_size) in
      for i = 0 to n - 1 do
        copy_out t (blk + i) out (i * t.block_size)
      done;
      Ok out
  | Fail cause ->
      Cffs_obs.Registry.incr m_io_errors;
      Error (err Io_error.Read ~blk ~nblocks:n cause)

(* One write request: consult the fault injector, account the request, then
   persist.  A torn request persists its prefix and then fails with
   [Power_cut] — a tear is only ever caused by losing power mid-request, so
   nothing after it completes either.  The write observer sees every request
   that persisted anything (full or torn), with the full intended payload. *)
let write_service t start data : (unit, Io_error.t) result =
  let n = Bytes.length data / t.block_size in
  let spb = sectors_per_block t in
  let outcome = consult t Io_error.Write ~blk:start ~nblocks:n in
  (match outcome with
  | Fail Io_error.Power_cut -> ()
  | _ -> time_request t (Request.write ~lba:(start * spb) ~sectors:(n * spb)));
  match outcome with
  | Proceed ->
      persist_request t start data ~keep_sectors:None;
      (match t.write_observer with
      | Some f -> f ~blk:start ~data ~torn:None
      | None -> ());
      Ok ()
  | Torn k ->
      let keep = max 0 (min (n * spb) k) in
      persist_request t start data ~keep_sectors:(Some keep);
      (match t.write_observer with
      | Some f -> f ~blk:start ~data ~torn:(Some keep)
      | None -> ());
      Cffs_obs.Registry.incr m_io_errors;
      Error (err Io_error.Write ~blk:start ~nblocks:n Io_error.Power_cut)
  | Fail cause ->
      Cffs_obs.Registry.incr m_io_errors;
      Error (err Io_error.Write ~blk:start ~nblocks:n cause)

(* --- the tagged-queue pipeline ------------------------------------------- *)

let h_wait = Cffs_obs.Registry.histogram "ioqueue.wait_s"
let m_wait_total = Cffs_obs.Registry.fcounter "ioqueue.wait_total_s"

let set_queue t ?depth ?policy ?coalesce () =
  Option.iter (Ioqueue.set_depth t.queue) depth;
  Option.iter (Ioqueue.set_policy t.queue) policy;
  Option.iter (Ioqueue.set_coalesce t.queue) coalesce

let queue_depth t = Ioqueue.depth t.queue
let queue_policy t = Ioqueue.policy t.queue
let queue_coalesce t = Ioqueue.coalesce t.queue
let pending t = Ioqueue.pending t.queue

let submit_read t blk n =
  check_range t Io_error.Read blk n;
  let spb = sectors_per_block t in
  Ioqueue.submit t.queue
    (Request.read ~lba:(blk * spb) ~sectors:(n * spb))
    Pread ~now:(dev_now t)

let submit_write t blk data =
  let len = Bytes.length data in
  if len = 0 || len mod t.block_size <> 0 then
    invalid_arg "Blockdev.submit_write: partial block";
  let n = len / t.block_size in
  check_range t Io_error.Write blk n;
  let spb = sectors_per_block t in
  Ioqueue.submit t.queue
    (Request.write ~lba:(blk * spb) ~sectors:(n * spb))
    (Pwrite data) ~now:(dev_now t)

let geom_of t =
  match t.backend with
  | Memory _ -> None
  | Timed { drive; _ } -> Some (Drive.geometry drive)

let head_cyl t =
  match t.backend with
  | Memory _ -> 0
  | Timed { drive; _ } -> Drive.current_cyl drive

let push_cqe t c = t.completed <- c :: t.completed

let item_blk t (it : qpayload Ioqueue.item) =
  let spb = sectors_per_block t in
  (it.req.Request.lba / spb, it.req.Request.sectors / spb)

let item_op (it : qpayload Ioqueue.item) =
  match it.req.Request.kind with
  | Request.Read -> Io_error.Read
  | Request.Write -> Io_error.Write

let cqe_of_item t (it : qpayload Ioqueue.item) result =
  let blk, n = item_blk t it in
  { cq_tag = it.tag; cq_op = item_op it; cq_blk = blk; cq_nblocks = n;
    cq_result = result }

(* Service one dispatch group as a single contiguous request.  When a
   merged request fails with a retryable cause, fall back to servicing the
   members individually so only the member actually covering the fault
   fails its waiter — the isolation the tagged queue promises.  Returns
   the group's cqes (also pushed to the completion list) and whether the
   device lost power. *)
let service_group t (group : qpayload Ioqueue.item list) =
  let now = dev_now t in
  List.iter
    (fun (it : qpayload Ioqueue.item) ->
      let wait = now -. it.Ioqueue.submitted_at in
      Cffs_obs.Registry.observe h_wait wait;
      Cffs_obs.Registry.fadd m_wait_total wait)
    group;
  let singles () =
    List.map
      (fun (it : qpayload Ioqueue.item) ->
        let blk, n = item_blk t it in
        match it.Ioqueue.payload with
        | Pread -> cqe_of_item t it (read_service t blk n)
        | Pwrite data ->
            cqe_of_item t it
              (Result.map (fun () -> Bytes.empty) (write_service t blk data)))
      group
  in
  let cqes =
    match group with
    | [] -> []
    | [ _ ] -> singles ()
    | first :: _ -> (
        (* contiguous ascending by construction *)
        let start, _ = item_blk t first in
        let total =
          List.fold_left
            (fun acc it -> acc + snd (item_blk t it))
            0 group
        in
        match first.Ioqueue.payload with
        | Pread -> (
            match read_service t start total with
            | Ok data ->
                List.map
                  (fun it ->
                    let blk, n = item_blk t it in
                    let part = Bytes.sub data ((blk - start) * t.block_size)
                        (n * t.block_size) in
                    cqe_of_item t it (Ok part))
                  group
            | Error e when e.Io_error.cause = Io_error.Power_cut ->
                List.map (fun it -> cqe_of_item t it (Error e)) group
            | Error _ -> singles ())
        | Pwrite _ -> (
            let data = Bytes.create (total * t.block_size) in
            List.iter
              (fun (it : qpayload Ioqueue.item) ->
                match it.Ioqueue.payload with
                | Pwrite d ->
                    let blk, _ = item_blk t it in
                    Bytes.blit d 0 data ((blk - start) * t.block_size)
                      (Bytes.length d)
                | Pread -> assert false)
              group;
            match write_service t start data with
            | Ok () ->
                List.map (fun it -> cqe_of_item t it (Ok Bytes.empty)) group
            | Error e when e.Io_error.cause = Io_error.Power_cut ->
                (* torn or cut mid-request: the merged request died as one *)
                List.map (fun it -> cqe_of_item t it (Error e)) group
            | Error _ -> singles ()))
  in
  List.iter (push_cqe t) cqes;
  let power_cut =
    List.exists
      (fun c ->
        match c.cq_result with
        | Error e -> e.Io_error.cause = Io_error.Power_cut
        | Ok _ -> false)
      cqes
  in
  (cqes, power_cut)

(* The device lost power (or the queue is being torn down): every request
   still queued fails its waiter without touching the media or the clock —
   and without counting as a device error, since the device never saw it. *)
let fail_pending t cause =
  List.iter
    (fun (it : qpayload Ioqueue.item) ->
      let blk, n = item_blk t it in
      push_cqe t (cqe_of_item t it (Error (err (item_op it) ~blk ~nblocks:n cause))))
    (Ioqueue.clear t.queue)

let reset_queue t =
  let n = Ioqueue.pending t.queue in
  fail_pending t Io_error.Power_cut;
  n

(* Drain loop.  The head-position convention matches the batch scheduler
   this replaces: the cylinder used for the next pick is the cylinder of
   the previous dispatch's first lba (the drive's resting position at the
   start of the drain for the first pick). *)
let take_group t cyl =
  match Ioqueue.take t.queue ~geom:(geom_of t) ~current_cyl:!cyl with
  | None -> None
  | Some group ->
      (match (geom_of t, group) with
      | Some g, (it : qpayload Ioqueue.item) :: _ ->
          cyl := Geometry.cyl_of_lba g it.req.Request.lba
      | _ -> ());
      Some group

let drain t =
  let cyl = ref (head_cyl t) in
  let rec loop () =
    match take_group t cyl with
    | None -> ()
    | Some group ->
        let _, power_cut = service_group t group in
        if power_cut then fail_pending t Io_error.Power_cut else loop ()
  in
  loop ();
  let out = List.rev t.completed in
  t.completed <- [];
  out

(* Drain until [tag] completes, leaving any other pending requests queued
   and any other completions for a later [drain]. *)
let drain_tag t tag =
  let find () =
    match List.find_opt (fun c -> c.cq_tag = tag) t.completed with
    | None -> None
    | Some c ->
        t.completed <- List.filter (fun x -> x != c) t.completed;
        Some c
  in
  let cyl = ref (head_cyl t) in
  let rec loop () =
    match find () with
    | Some c -> c
    | None -> (
        match take_group t cyl with
        | None -> invalid_arg "Blockdev.drain_tag: unknown tag"
        | Some group ->
            let _, power_cut = service_group t group in
            if power_cut then fail_pending t Io_error.Power_cut;
            loop ())
  in
  loop ()

let read t blk n =
  check_range t Io_error.Read blk n;
  let tag = submit_read t blk n in
  match (drain_tag t tag).cq_result with
  | Ok data -> data
  | Error e -> raise (Io_error.E e)

let write t blk data =
  let len = Bytes.length data in
  if len mod t.block_size <> 0 then invalid_arg "Blockdev.write: partial block";
  let n = len / t.block_size in
  check_range t Io_error.Write blk n;
  let tag = submit_write t blk data in
  match (drain_tag t tag).cq_result with
  | Ok _ -> ()
  | Error e -> raise (Io_error.E e)

(* Issue a set of contiguous units, each submitted as one tagged write and
   drained through the queue under the mount's scheduling policy.  Each
   request persists (and notifies the write observer) as it is serviced; on
   the first failure the remaining queue is torn down unserviced, so a
   failure mid-batch leaves exactly the already-serviced prefix on the
   media — the crash semantics the fault harness depends on.  The memory
   backend services units in the order given (FIFO queue, no geometry). *)
let issue_units t units =
  match units with
  | [] -> ()
  | _ ->
      List.iter
        (fun (start, blocks) ->
          check_range t Io_error.Write start (List.length blocks))
        units;
      let mine = Hashtbl.create 16 in
      List.iter
        (fun (start, blocks) ->
          let n = List.length blocks in
          let data = Bytes.create (n * t.block_size) in
          List.iteri
            (fun i b -> Bytes.blit b 0 data (i * t.block_size) t.block_size)
            blocks;
          Hashtbl.replace mine (submit_write t start data) ())
        units;
      let cyl = ref (head_cyl t) in
      let rec loop () =
        match take_group t cyl with
        | None -> None
        | Some group ->
            let cqes, power_cut = service_group t group in
            let first_err =
              List.find_map
                (fun c ->
                  match c.cq_result with
                  | Error e when Hashtbl.mem mine c.cq_tag -> Some e
                  | _ -> None)
                cqes
            in
            match first_err with
            | Some e ->
                fail_pending t Io_error.Power_cut;
                Some e
            | None ->
                if power_cut then begin
                  fail_pending t Io_error.Power_cut;
                  None
                end
                else loop ()
      in
      let looped = loop () in
      (* strip our completions; foreign async completions stay for their
         own [drain] *)
      let ours, others =
        List.partition (fun c -> Hashtbl.mem mine c.cq_tag) (List.rev t.completed)
      in
      t.completed <- List.rev others;
      let raise_first e = raise (Io_error.E e) in
      (match looped with Some e -> raise_first e | None -> ());
      List.iter
        (fun c -> match c.cq_result with Error e -> raise_first e | Ok _ -> ())
        ours

let check_one_block t (blk, data) =
  if Bytes.length data <> t.block_size then
    invalid_arg "Blockdev.write_batch: data must be one block";
  check_range t Io_error.Write blk 1

let write_batch t blocks =
  List.iter (check_one_block t) blocks;
  issue_units t (List.map (fun (blk, data) -> (blk, [ data ])) blocks)

let write_batch_units t units =
  List.iter
    (fun (start, blocks) ->
      List.iteri (fun i data -> check_one_block t (start + i, data)) blocks)
    units;
  issue_units t units

let store_raw t blk data ~keep_sectors =
  let len = Bytes.length data in
  if len mod t.block_size <> 0 then invalid_arg "Blockdev.store_raw: partial block";
  check_range t Io_error.Write blk (len / t.block_size);
  persist_request t blk data ~keep_sectors

let now t =
  match t.backend with Memory m -> m.clock | Timed { drive; _ } -> Drive.now drive

let advance t dt =
  match t.backend with
  | Memory m -> m.clock <- m.clock +. dt
  | Timed { drive; _ } -> Drive.advance drive dt

let stats t =
  match t.backend with
  | Memory m -> m.stats
  | Timed { drive; _ } -> Drive.stats drive

let drive t = match t.backend with Memory _ -> None | Timed { drive; _ } -> Some drive

let flush_device_cache t =
  match t.backend with Memory _ -> () | Timed { drive; _ } -> Drive.flush_cache drive

let snapshot t =
  let blocks = Hashtbl.create (Hashtbl.length t.store) in
  Hashtbl.iter (fun k v -> Hashtbl.replace blocks k (Bytes.copy v)) t.store;
  {
    img_blocks = blocks;
    img_tags = Hashtbl.copy t.tags;
    img_tags_enabled = t.tags_enabled;
  }

let restore t img =
  Hashtbl.reset t.store;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.store k (Bytes.copy v)) img.img_blocks;
  Hashtbl.reset t.tags;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.tags k v) img.img_tags;
  t.tags_enabled <- t.tags_enabled || img.img_tags_enabled

let blocks_written img = Hashtbl.length img.img_blocks

let write_torn t blk data ~keep_sectors =
  check_range t Io_error.Write blk 1;
  if Bytes.length data <> t.block_size then invalid_arg "Blockdev.write_torn";
  persist_request t blk data ~keep_sectors:(Some keep_sectors)

let corrupt_block t blk prng =
  check_range t Io_error.Write blk 1;
  Hashtbl.replace t.store blk (Cffs_util.Prng.bytes prng t.block_size)

let save_file t path =
  let oc = open_out_bin path in
  (try
     (* Fix the file's extent first so unwritten tails stay sparse. *)
     seek_out oc ((t.nblocks * t.block_size) - 1);
     output_char oc '\000';
     Hashtbl.iter
       (fun blk data ->
         seek_out oc (blk * t.block_size);
         output_bytes oc data)
       t.store;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e)

let load_file ?(block_size = 4096) path =
  let ic = open_in_bin path in
  let t =
    try
      let len = in_channel_length ic in
      if len = 0 || len mod block_size <> 0 then
        invalid_arg "Blockdev.load_file: image size is not a block multiple";
      let nblocks = len / block_size in
      let t = memory ~block_size ~nblocks in
      let buf = Bytes.create block_size in
      let zero = Bytes.make block_size '\000' in
      for blk = 0 to nblocks - 1 do
        really_input ic buf 0 block_size;
        if not (Bytes.equal buf zero) then store_block t blk buf 0
      done;
      t
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  t
