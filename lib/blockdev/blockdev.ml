open Cffs_disk
module Io_error = Cffs_util.Io_error

(* Uniform request accounting for both backends; the timed backend's drive
   additionally keeps its own (timed) [Request.Stats]. *)
let m_reads = Cffs_obs.Registry.counter "blockdev.reads"
let m_writes = Cffs_obs.Registry.counter "blockdev.writes"
let m_read_sectors = Cffs_obs.Registry.counter "blockdev.read_sectors"
let m_write_sectors = Cffs_obs.Registry.counter "blockdev.write_sectors"
let m_io_errors = Cffs_obs.Registry.counter "blockdev.io_errors"
let m_host = Cffs_obs.Registry.fcounter "blockdev.host_s"

type outcome = Proceed | Torn of int | Fail of Io_error.cause
type injector = Io_error.op -> blk:int -> nblocks:int -> outcome
type write_observer = blk:int -> data:bytes -> torn:int option -> unit

type backend =
  | Memory of { mutable clock : float; stats : Request.Stats.s }
  | Timed of { drive : Drive.t; policy : Scheduler.policy; host_overhead : float }
  | Multi of multi

(* A composite device: logical blocks mapped onto N subdevices (simulated
   spindles) by an extent table.  Each subdevice keeps its own Ioqueue, so
   scheduling, tagged queuing, coalescing and fault isolation apply
   per-spindle; the composite clock is the {e maximum} of the sub clocks
   (spindles service their queues concurrently), which is what makes
   multi-drain throughput scale.  Requests are split at extent boundaries
   into per-spindle fragments and reassembled on completion. *)
and multi = {
  subs : t array;
  extents : extent array;  (* sorted by lstart; tiles [0, nblocks) *)
  sub_extents : extent array array;  (* per subdevice, sorted by pstart *)
  frags : (int * int, frag) Hashtbl.t;  (* (sub index, sub tag) -> fragment *)
  parents : (int, parent) Hashtbl.t;  (* composite tag -> assembly state *)
  mutable next_tag : int;
}

and extent = { lstart : int; xlen : int; xsub : int; pstart : int }

and frag = { fr_parent : int; fr_off : int (* blocks into the parent *); fr_len : int; fr_lblk : int }

and parent = {
  p_tag : int;
  p_op : Io_error.op;
  p_blk : int;
  p_n : int;
  p_data : bytes;  (* reads: assembly buffer; writes: empty *)
  mutable p_left : int;  (* fragments outstanding *)
  mutable p_err : Io_error.t option;  (* first fragment failure, logical blocks *)
}

(* Payload carried through the tagged queue: reads want data back, writes
   carry the data in. *)
and qpayload = Pread | Pwrite of bytes

and cqe = {
  cq_tag : Ioqueue.tag;
  cq_op : Io_error.op;
  cq_blk : int;
  cq_nblocks : int;
  cq_result : (bytes, Io_error.t) result;
      (* [Ok data] for reads, [Ok Bytes.empty] for writes *)
}

and t = {
  backend : backend;
  store : (int, bytes) Hashtbl.t;
  block_size : int;
  nblocks : int;
  queue : qpayload Ioqueue.t;
  mutable completed : cqe list;  (* reverse completion order *)
  mutable injector : injector option;
  mutable write_observer : write_observer option;
  (* Out-of-band per-block integrity tags, the software analogue of
     T10-DIF / 520-byte-sector protection information: a tag travels with
     the block through the same request that persists it, so the pair is
     updated atomically and a torn request leaves the old tag in place —
     which is exactly what makes the tear detectable.  Maintained only
     when [tags_enabled]; the Integrity layer owns the at-rest encoding
     (the on-disk checksum region) and all verification. *)
  tags : (int, int) Hashtbl.t;
  mutable tags_enabled : bool;
}

type flat_image = {
  img_blocks : (int, bytes) Hashtbl.t;
  img_tags : (int, int) Hashtbl.t;
  img_tags_enabled : bool;
}

type image =
  | Iflat of flat_image
  | Imulti of { parts : image array; iextents : extent array }

let sectors_per_block t = t.block_size / Cffs_util.Units.sector_size

(* --- extent mapping (composite devices) ---------------------------------- *)

(* The extent holding logical block [lblk], plus the offset into it.
   Extents tile the logical space, so the search always lands. *)
let locate (m : multi) lblk =
  let a = m.extents in
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if a.(mid).lstart <= lblk then lo := mid else hi := mid - 1
  done;
  let e = a.(!lo) in
  (e, lblk - e.lstart)

(* Split the logical range [blk, blk+n) into per-spindle fragments
   [(sub, pstart, off_blocks, len)] in logical order. *)
let frags_of m blk n =
  let rec go acc blk n off =
    if n = 0 then List.rev acc
    else
      let e, eoff = locate m blk in
      let run = min n (e.xlen - eoff) in
      go ((e.xsub, e.pstart + eoff, off, run) :: acc) (blk + run) (n - run)
        (off + run)
  in
  go [] blk n 0

(* The logical runs a {e physical} range on subdevice [i] covers:
   [(off_blocks_into_request, logical_start, len)] in physical order.
   Physical blocks outside every extent yield no run. *)
let runs_of m i pblk n =
  let a = m.sub_extents.(i) in
  let pend = pblk + n in
  let out = ref [] in
  Array.iter
    (fun e ->
      let s = max pblk e.pstart and e' = min pend (e.pstart + e.xlen) in
      if s < e' then out := (s - pblk, e.lstart + (s - e.pstart), e' - s) :: !out)
    a;
  List.rev !out

let of_drive ?(policy = Scheduler.Clook) ?(host_overhead = 0.5e-3) drive ~block_size =
  if block_size <= 0 || block_size mod Cffs_util.Units.sector_size <> 0 then
    invalid_arg "Blockdev.of_drive: block size";
  let nblocks = Drive.total_sectors drive * Cffs_util.Units.sector_size / block_size in
  {
    backend = Timed { drive; policy; host_overhead };
    store = Hashtbl.create 4096;
    block_size;
    nblocks;
    queue = Ioqueue.create ~policy ();
    completed = [];
    injector = None;
    write_observer = None;
    tags = Hashtbl.create 64;
    tags_enabled = false;
  }

let memory ~block_size ~nblocks =
  if block_size <= 0 || nblocks <= 0 then invalid_arg "Blockdev.memory";
  {
    backend = Memory { clock = 0.0; stats = Request.Stats.create () };
    store = Hashtbl.create 4096;
    block_size;
    nblocks;
    queue = Ioqueue.create ();
    completed = [];
    injector = None;
    write_observer = None;
    tags = Hashtbl.create 64;
    tags_enabled = false;
  }

let block_size t = t.block_size
let nblocks t = t.nblocks
let set_injector t inj = t.injector <- inj
let set_write_observer t obs = t.write_observer <- obs

let subdevices t =
  match t.backend with Multi m -> Array.copy m.subs | _ -> [||]

(* Tags live with the media, so on a composite they live in the
   subdevices' tables, keyed by physical block; the composite translates. *)
let rec enable_tags t =
  t.tags_enabled <- true;
  match t.backend with
  | Multi m -> Array.iter enable_tags m.subs
  | _ -> ()

let tags_enabled t = t.tags_enabled

let rec tag t blk =
  match t.backend with
  | Multi m ->
      let e, off = locate m blk in
      tag m.subs.(e.xsub) (e.pstart + off)
  | _ -> Hashtbl.find_opt t.tags blk

let rec set_tag t blk v =
  match t.backend with
  | Multi m ->
      let e, off = locate m blk in
      set_tag m.subs.(e.xsub) (e.pstart + off) v
  | _ -> Hashtbl.replace t.tags blk v

let rec tag_count t =
  match t.backend with
  | Multi m -> Array.fold_left (fun acc s -> acc + tag_count s) 0 m.subs
  | _ -> Hashtbl.length t.tags

let check_range t op blk n =
  if blk < 0 || n <= 0 || blk + n > t.nblocks then
    let spb = t.block_size / Cffs_util.Units.sector_size in
    Io_error.raise_error ~op ~blk ~nblocks:n
      ~range:
        {
          Io_error.start_sector = blk * spb;
          sector_count = n * spb;
          dev_sectors = t.nblocks * spb;
          dev_blocks = t.nblocks;
        }
      Io_error.Out_of_bounds

let consult t op ~blk ~nblocks =
  match t.injector with None -> Proceed | Some f -> f op ~blk ~nblocks

let copy_out t blk dst off =
  match Hashtbl.find_opt t.store blk with
  | Some b -> Bytes.blit b 0 dst off t.block_size
  | None -> Bytes.fill dst off t.block_size '\000'

let store_block t blk src off =
  let b =
    match Hashtbl.find_opt t.store blk with
    | Some b -> b
    | None ->
        let b = Bytes.create t.block_size in
        Hashtbl.replace t.store blk b;
        b
  in
  Bytes.blit src off b 0 t.block_size

(* Persist a write request's payload, possibly torn: only the first
   [keep_sectors] 512-byte sectors reach the media, the rest of the range
   keeps its previous contents.  Sectors are atomic — the assumption C-FFS
   builds its name+inode atomicity on.

   Tag discipline: a fully persisted block gets the CRC of its new
   contents; a torn block keeps its {e old} tag — the request died before
   the out-of-band tag could be updated — so unless the mixed contents
   happen to equal the previous contents, a later verified read flags the
   tear. *)
let persist_request t start data ~keep_sectors =
  let ss = Cffs_util.Units.sector_size in
  let spb = sectors_per_block t in
  let n = Bytes.length data / t.block_size in
  let keep =
    match keep_sectors with
    | None -> n * spb
    | Some k -> max 0 (min (n * spb) k)
  in
  let full = keep / spb in
  for i = 0 to full - 1 do
    store_block t (start + i) data (i * t.block_size);
    if t.tags_enabled then
      Hashtbl.replace t.tags (start + i)
        (Cffs_util.Crc32.digest_sub data (i * t.block_size) t.block_size)
  done;
  let rem = keep mod spb in
  if rem > 0 then begin
    let old = Bytes.create t.block_size in
    copy_out t (start + full) old 0;
    Bytes.blit data (full * t.block_size) old 0 (rem * ss);
    store_block t (start + full) old 0
  end

let time_request t (req : Request.t) =
  (match req.kind with
  | Read ->
      Cffs_obs.Registry.incr m_reads;
      Cffs_obs.Registry.incr ~by:req.sectors m_read_sectors
  | Write ->
      Cffs_obs.Registry.incr m_writes;
      Cffs_obs.Registry.incr ~by:req.sectors m_write_sectors);
  match t.backend with
  | Memory m -> (
      let s = m.stats in
      match req.kind with
      | Read ->
          s.reads <- s.reads + 1;
          s.read_sectors <- s.read_sectors + req.sectors
      | Write ->
          s.writes <- s.writes + 1;
          s.write_sectors <- s.write_sectors + req.sectors)
  | Timed { drive; host_overhead; _ } ->
      Cffs_obs.Registry.fadd m_host host_overhead;
      Drive.advance drive host_overhead;
      ignore (Drive.service drive req)
  | Multi _ -> assert false (* composites never service requests themselves *)

let rec dev_now t =
  match t.backend with
  | Memory m -> m.clock
  | Timed { drive; _ } -> Drive.now drive
  | Multi m ->
      (* the composite clock: spindles run concurrently, so elapsed time is
         the maximum of the sub clocks, not their sum *)
      Array.fold_left (fun acc s -> Float.max acc (dev_now s)) 0.0 m.subs

let err op ~blk ~nblocks cause =
  { Io_error.op; blk; nblocks; cause; range = None }

(* One read request against the media: consult the fault injector, account
   the request (reads are timed even when they fail — the head still moved),
   then copy out. *)
let read_service t blk n : (bytes, Io_error.t) result =
  let spb = sectors_per_block t in
  let outcome = consult t Io_error.Read ~blk ~nblocks:n in
  time_request t (Request.read ~lba:(blk * spb) ~sectors:(n * spb));
  match outcome with
  | Proceed | Torn _ ->
      let out = Bytes.create (n * t.block_size) in
      for i = 0 to n - 1 do
        copy_out t (blk + i) out (i * t.block_size)
      done;
      Ok out
  | Fail cause ->
      Cffs_obs.Registry.incr m_io_errors;
      Error (err Io_error.Read ~blk ~nblocks:n cause)

(* One write request: consult the fault injector, account the request, then
   persist.  A torn request persists its prefix and then fails with
   [Power_cut] — a tear is only ever caused by losing power mid-request, so
   nothing after it completes either.  The write observer sees every request
   that persisted anything (full or torn), with the full intended payload. *)
let write_service t start data : (unit, Io_error.t) result =
  let n = Bytes.length data / t.block_size in
  let spb = sectors_per_block t in
  let outcome = consult t Io_error.Write ~blk:start ~nblocks:n in
  (match outcome with
  | Fail Io_error.Power_cut -> ()
  | _ -> time_request t (Request.write ~lba:(start * spb) ~sectors:(n * spb)));
  match outcome with
  | Proceed ->
      persist_request t start data ~keep_sectors:None;
      (match t.write_observer with
      | Some f -> f ~blk:start ~data ~torn:None
      | None -> ());
      Ok ()
  | Torn k ->
      let keep = max 0 (min (n * spb) k) in
      persist_request t start data ~keep_sectors:(Some keep);
      (match t.write_observer with
      | Some f -> f ~blk:start ~data ~torn:(Some keep)
      | None -> ());
      Cffs_obs.Registry.incr m_io_errors;
      Error (err Io_error.Write ~blk:start ~nblocks:n Io_error.Power_cut)
  | Fail cause ->
      Cffs_obs.Registry.incr m_io_errors;
      Error (err Io_error.Write ~blk:start ~nblocks:n cause)

(* --- the tagged-queue pipeline ------------------------------------------- *)

let h_wait = Cffs_obs.Registry.histogram "ioqueue.wait_s"
let m_wait_total = Cffs_obs.Registry.fcounter "ioqueue.wait_total_s"

let set_queue t ?depth ?policy ?coalesce () =
  Option.iter (Ioqueue.set_depth t.queue) depth;
  Option.iter (Ioqueue.set_policy t.queue) policy;
  Option.iter (Ioqueue.set_coalesce t.queue) coalesce

let queue_depth t = Ioqueue.depth t.queue
let queue_policy t = Ioqueue.policy t.queue
let queue_coalesce t = Ioqueue.coalesce t.queue
let pending t = Ioqueue.pending t.queue

let submit_read t blk n =
  check_range t Io_error.Read blk n;
  let spb = sectors_per_block t in
  Ioqueue.submit t.queue
    (Request.read ~lba:(blk * spb) ~sectors:(n * spb))
    Pread ~now:(dev_now t)

let submit_write t blk data =
  let len = Bytes.length data in
  if len = 0 || len mod t.block_size <> 0 then
    invalid_arg "Blockdev.submit_write: partial block";
  let n = len / t.block_size in
  check_range t Io_error.Write blk n;
  let spb = sectors_per_block t in
  Ioqueue.submit t.queue
    (Request.write ~lba:(blk * spb) ~sectors:(n * spb))
    (Pwrite data) ~now:(dev_now t)

let geom_of t =
  match t.backend with
  | Memory _ | Multi _ -> None
  | Timed { drive; _ } -> Some (Drive.geometry drive)

let head_cyl t =
  match t.backend with
  | Memory _ | Multi _ -> 0
  | Timed { drive; _ } -> Drive.current_cyl drive

let push_cqe t c = t.completed <- c :: t.completed

let item_blk t (it : qpayload Ioqueue.item) =
  let spb = sectors_per_block t in
  (it.req.Request.lba / spb, it.req.Request.sectors / spb)

let item_op (it : qpayload Ioqueue.item) =
  match it.req.Request.kind with
  | Request.Read -> Io_error.Read
  | Request.Write -> Io_error.Write

let cqe_of_item t (it : qpayload Ioqueue.item) result =
  let blk, n = item_blk t it in
  { cq_tag = it.tag; cq_op = item_op it; cq_blk = blk; cq_nblocks = n;
    cq_result = result }

(* Service one dispatch group as a single contiguous request.  When a
   merged request fails with a retryable cause, fall back to servicing the
   members individually so only the member actually covering the fault
   fails its waiter — the isolation the tagged queue promises.  Returns
   the group's cqes (also pushed to the completion list) and whether the
   device lost power. *)
let service_group t (group : qpayload Ioqueue.item list) =
  let now = dev_now t in
  List.iter
    (fun (it : qpayload Ioqueue.item) ->
      let wait = now -. it.Ioqueue.submitted_at in
      Cffs_obs.Registry.observe h_wait wait;
      Cffs_obs.Registry.fadd m_wait_total wait)
    group;
  let singles () =
    List.map
      (fun (it : qpayload Ioqueue.item) ->
        let blk, n = item_blk t it in
        match it.Ioqueue.payload with
        | Pread -> cqe_of_item t it (read_service t blk n)
        | Pwrite data ->
            cqe_of_item t it
              (Result.map (fun () -> Bytes.empty) (write_service t blk data)))
      group
  in
  let cqes =
    match group with
    | [] -> []
    | [ _ ] -> singles ()
    | first :: _ -> (
        (* contiguous ascending by construction *)
        let start, _ = item_blk t first in
        let total =
          List.fold_left
            (fun acc it -> acc + snd (item_blk t it))
            0 group
        in
        match first.Ioqueue.payload with
        | Pread -> (
            match read_service t start total with
            | Ok data ->
                List.map
                  (fun it ->
                    let blk, n = item_blk t it in
                    let part = Bytes.sub data ((blk - start) * t.block_size)
                        (n * t.block_size) in
                    cqe_of_item t it (Ok part))
                  group
            | Error e when e.Io_error.cause = Io_error.Power_cut ->
                List.map (fun it -> cqe_of_item t it (Error e)) group
            | Error _ -> singles ())
        | Pwrite _ -> (
            let data = Bytes.create (total * t.block_size) in
            List.iter
              (fun (it : qpayload Ioqueue.item) ->
                match it.Ioqueue.payload with
                | Pwrite d ->
                    let blk, _ = item_blk t it in
                    Bytes.blit d 0 data ((blk - start) * t.block_size)
                      (Bytes.length d)
                | Pread -> assert false)
              group;
            match write_service t start data with
            | Ok () ->
                List.map (fun it -> cqe_of_item t it (Ok Bytes.empty)) group
            | Error e when e.Io_error.cause = Io_error.Power_cut ->
                (* torn or cut mid-request: the merged request died as one *)
                List.map (fun it -> cqe_of_item t it (Error e)) group
            | Error _ -> singles ()))
  in
  List.iter (push_cqe t) cqes;
  let power_cut =
    List.exists
      (fun c ->
        match c.cq_result with
        | Error e -> e.Io_error.cause = Io_error.Power_cut
        | Ok _ -> false)
      cqes
  in
  (cqes, power_cut)

(* The device lost power (or the queue is being torn down): every request
   still queued fails its waiter without touching the media or the clock —
   and without counting as a device error, since the device never saw it. *)
let fail_pending t cause =
  List.iter
    (fun (it : qpayload Ioqueue.item) ->
      let blk, n = item_blk t it in
      push_cqe t (cqe_of_item t it (Error (err (item_op it) ~blk ~nblocks:n cause))))
    (Ioqueue.clear t.queue)

let reset_queue t =
  let n = Ioqueue.pending t.queue in
  fail_pending t Io_error.Power_cut;
  n

(* Drain loop.  The head-position convention matches the batch scheduler
   this replaces: the cylinder used for the next pick is the cylinder of
   the previous dispatch's first lba (the drive's resting position at the
   start of the drain for the first pick). *)
let take_group t cyl =
  match Ioqueue.take t.queue ~geom:(geom_of t) ~current_cyl:!cyl with
  | None -> None
  | Some group ->
      (match (geom_of t, group) with
      | Some g, (it : qpayload Ioqueue.item) :: _ ->
          cyl := Geometry.cyl_of_lba g it.req.Request.lba
      | _ -> ());
      Some group

let drain t =
  let cyl = ref (head_cyl t) in
  let rec loop () =
    match take_group t cyl with
    | None -> ()
    | Some group ->
        let _, power_cut = service_group t group in
        if power_cut then fail_pending t Io_error.Power_cut else loop ()
  in
  loop ();
  let out = List.rev t.completed in
  t.completed <- [];
  out

(* Drain until [tag] completes, leaving any other pending requests queued
   and any other completions for a later [drain]. *)
let drain_tag t tag =
  let find () =
    match List.find_opt (fun c -> c.cq_tag = tag) t.completed with
    | None -> None
    | Some c ->
        t.completed <- List.filter (fun x -> x != c) t.completed;
        Some c
  in
  let cyl = ref (head_cyl t) in
  let rec loop () =
    match find () with
    | Some c -> c
    | None -> (
        match take_group t cyl with
        | None -> invalid_arg "Blockdev.drain_tag: unknown tag"
        | Some group ->
            let _, power_cut = service_group t group in
            if power_cut then fail_pending t Io_error.Power_cut;
            loop ())
  in
  loop ()

(* Issue a set of contiguous units, each submitted as one tagged write and
   drained through the queue under the mount's scheduling policy.  Each
   request persists (and notifies the write observer) as it is serviced; on
   the first failure the remaining queue is torn down unserviced, so a
   failure mid-batch leaves exactly the already-serviced prefix on the
   media — the crash semantics the fault harness depends on.  The memory
   backend services units in the order given (FIFO queue, no geometry). *)
let issue_units t units =
  match units with
  | [] -> ()
  | _ ->
      List.iter
        (fun (start, blocks) ->
          check_range t Io_error.Write start (List.length blocks))
        units;
      let mine = Hashtbl.create 16 in
      List.iter
        (fun (start, blocks) ->
          let n = List.length blocks in
          let data = Bytes.create (n * t.block_size) in
          List.iteri
            (fun i b -> Bytes.blit b 0 data (i * t.block_size) t.block_size)
            blocks;
          Hashtbl.replace mine (submit_write t start data) ())
        units;
      let cyl = ref (head_cyl t) in
      let rec loop () =
        match take_group t cyl with
        | None -> None
        | Some group ->
            let cqes, power_cut = service_group t group in
            let first_err =
              List.find_map
                (fun c ->
                  match c.cq_result with
                  | Error e when Hashtbl.mem mine c.cq_tag -> Some e
                  | _ -> None)
                cqes
            in
            match first_err with
            | Some e ->
                fail_pending t Io_error.Power_cut;
                Some e
            | None ->
                if power_cut then begin
                  fail_pending t Io_error.Power_cut;
                  None
                end
                else loop ()
      in
      let looped = loop () in
      (* strip our completions; foreign async completions stay for their
         own [drain] *)
      let ours, others =
        List.partition (fun c -> Hashtbl.mem mine c.cq_tag) (List.rev t.completed)
      in
      t.completed <- List.rev others;
      let raise_first e = raise (Io_error.E e) in
      (match looped with Some e -> raise_first e | None -> ());
      List.iter
        (fun c -> match c.cq_result with Error e -> raise_first e | Ok _ -> ())
        ours

(* --- multi-volume fan-out ------------------------------------------------- *)

(* A dependent (synchronous) operation on the composite is a barrier: every
   spindle must have reached the composite clock before new work is charged,
   so idle spindles account their idle time.  Batched drains then let each
   spindle advance independently — overlapping service is what produces the
   near-linear scaling. *)
let sub_advance s dt =
  match s.backend with
  | Memory mm -> mm.clock <- mm.clock +. dt
  | Timed { drive; _ } -> Drive.advance drive dt
  | Multi _ -> assert false

let m_sync m =
  let now = Array.fold_left (fun acc s -> Float.max acc (dev_now s)) 0.0 m.subs in
  Array.iter
    (fun s ->
      let d = now -. dev_now s in
      if d > 0.0 then sub_advance s d)
    m.subs

(* The per-spindle hooks installed at composite creation: a subdevice
   consults/notifies the {e composite's} injector and observer with logical
   addresses, so Faultdev and Integrity attach to the composite unchanged
   (their journals and fault sets live in logical space, and a materialized
   crash image is an ordinary flat device).  A physical request that spans
   extents (possible only through sub-queue coalescing) is consulted one
   logical run at a time: the first non-[Proceed] outcome wins, with torn
   sector counts rebased to the physical request. *)
let sub_injector comp m i : injector =
 fun op ~blk ~nblocks ->
  match comp.injector with
  | None -> Proceed
  | Some f ->
      let spb = sectors_per_block comp in
      let rec go sectors = function
        | [] -> Proceed
        | (_, lblk, len) :: rest -> (
            match f op ~blk:lblk ~nblocks:len with
            | Proceed -> go (sectors + (len * spb)) rest
            | Torn k -> Torn (sectors + k)
            | Fail c -> Fail c)
      in
      go 0 (runs_of m i blk nblocks)

let sub_observer comp m i : write_observer =
 fun ~blk ~data ~torn ->
  match comp.write_observer with
  | None -> ()
  | Some f ->
      let bs = comp.block_size in
      let spb = sectors_per_block comp in
      let n = Bytes.length data / bs in
      List.iter
        (fun (off, lblk, len) ->
          let part = Bytes.sub data (off * bs) (len * bs) in
          let torn =
            match torn with
            | None -> None
            | Some k -> Some (max 0 (min (len * spb) (k - (off * spb))))
          in
          f ~blk:lblk ~data:part ~torn)
        (runs_of m i blk n)

(* Submit one logical request as per-spindle fragments.  All sub clocks are
   synced first so queue-wait accounting starts from the composite now. *)
let m_submit t m op blk n data =
  check_range t op blk n;
  m_sync m;
  let tag = m.next_tag in
  m.next_tag <- tag + 1;
  let frl = frags_of m blk n in
  let p =
    {
      p_tag = tag;
      p_op = op;
      p_blk = blk;
      p_n = n;
      p_data =
        (match data with
        | None -> Bytes.create (n * t.block_size)
        | Some _ -> Bytes.empty);
      p_left = List.length frl;
      p_err = None;
    }
  in
  Hashtbl.replace m.parents tag p;
  List.iter
    (fun (si, pblk, off, len) ->
      let sub = m.subs.(si) in
      let stag =
        match data with
        | None -> submit_read sub pblk len
        | Some d ->
            submit_write sub pblk
              (Bytes.sub d (off * t.block_size) (len * t.block_size))
      in
      Hashtbl.replace m.frags (si, stag)
        { fr_parent = tag; fr_off = off; fr_len = len; fr_lblk = blk + off })
    frl;
  tag

(* Fold one spindle's completions into their parents; a parent whose last
   fragment lands becomes a composite completion.  Fragment errors are
   rebased to the fragment's logical range. *)
let m_absorb t m si cqes =
  List.iter
    (fun c ->
      match Hashtbl.find_opt m.frags (si, c.cq_tag) with
      | None -> () (* direct submission to a subdevice; not ours *)
      | Some fr -> (
          Hashtbl.remove m.frags (si, c.cq_tag);
          match Hashtbl.find_opt m.parents fr.fr_parent with
          | None -> ()
          | Some p ->
              (match c.cq_result with
              | Ok data ->
                  if p.p_op = Io_error.Read && Bytes.length data > 0 then
                    Bytes.blit data 0 p.p_data (fr.fr_off * t.block_size)
                      (fr.fr_len * t.block_size)
              | Error e ->
                  if p.p_err = None then
                    p.p_err <-
                      Some
                        {
                          e with
                          Io_error.blk = fr.fr_lblk;
                          nblocks = fr.fr_len;
                          range = None;
                        });
              p.p_left <- p.p_left - 1;
              if p.p_left = 0 then begin
                Hashtbl.remove m.parents p.p_tag;
                let result =
                  match p.p_err with
                  | Some e -> Error e
                  | None ->
                      Ok (if p.p_op = Io_error.Read then p.p_data else Bytes.empty)
                in
                push_cqe t
                  {
                    cq_tag = p.p_tag;
                    cq_op = p.p_op;
                    cq_blk = p.p_blk;
                    cq_nblocks = p.p_n;
                    cq_result = result;
                  }
              end))
    cqes

let m_drain t m =
  m_sync m;
  Array.iteri (fun i s -> m_absorb t m i (drain s)) m.subs;
  let out = List.rev t.completed in
  t.completed <- [];
  out

(* Drain only the spindles holding fragments of [tag]; other spindles'
   pending requests stay queued (and their clocks stay put). *)
let m_drain_tag t m tag =
  let find () =
    match List.find_opt (fun c -> c.cq_tag = tag) t.completed with
    | None -> None
    | Some c ->
        t.completed <- List.filter (fun x -> x != c) t.completed;
        Some c
  in
  match find () with
  | Some c -> c
  | None ->
      if not (Hashtbl.mem m.parents tag) then
        invalid_arg "Blockdev.drain_tag: unknown tag";
      m_sync m;
      let needed = Array.make (Array.length m.subs) false in
      Hashtbl.iter
        (fun (si, _) fr -> if fr.fr_parent = tag then needed.(si) <- true)
        m.frags;
      Array.iteri
        (fun i need -> if need then m_absorb t m i (drain m.subs.(i)))
        needed;
      (match find () with
      | Some c -> c
      | None -> invalid_arg "Blockdev.drain_tag: unknown tag")

let m_reset t m =
  let n = Array.fold_left (fun acc s -> acc + reset_queue s) 0 m.subs in
  (* subdevices report their torn-down requests as completions on the next
     drain; absorb them now so the composite's next drain reports the
     failed parents, matching the single-device contract *)
  Array.iteri (fun i s -> m_absorb t m i (drain s)) m.subs;
  n

(* Batched synchronous writes: every unit's fragments are submitted before
   any spindle drains, so spindles service their shares concurrently.  A
   power cut stops every spindle at the same global request boundary (the
   injector goes dead for all of them); other faults stay confined to the
   spindle that hit them.  The first failed unit's error is raised after
   the drain, in submission order. *)
let m_issue_units t m units =
  match units with
  | [] -> ()
  | _ ->
      List.iter
        (fun (start, blocks) ->
          check_range t Io_error.Write start (List.length blocks))
        units;
      let order = ref [] in
      List.iter
        (fun (start, blocks) ->
          let n = List.length blocks in
          let data = Bytes.create (n * t.block_size) in
          List.iteri
            (fun i b -> Bytes.blit b 0 data (i * t.block_size) t.block_size)
            blocks;
          order := m_submit t m Io_error.Write start n (Some data) :: !order)
        units;
      let mine = Hashtbl.create 16 in
      List.iter (fun tag -> Hashtbl.replace mine tag ()) !order;
      m_sync m;
      Array.iteri (fun i s -> m_absorb t m i (drain s)) m.subs;
      let ours, others =
        List.partition (fun c -> Hashtbl.mem mine c.cq_tag) (List.rev t.completed)
      in
      t.completed <- List.rev others;
      let failed =
        List.filter_map
          (fun tag ->
            List.find_map
              (fun c ->
                if c.cq_tag = tag then
                  match c.cq_result with Error e -> Some e | Ok _ -> None
                else None)
              ours)
          (List.rev !order)
      in
      (match failed with e :: _ -> raise (Io_error.E e) | [] -> ())

let multi ~subs ~extents =
  if Array.length subs = 0 then invalid_arg "Blockdev.multi: no subdevices";
  let block_size = subs.(0).block_size in
  Array.iter
    (fun s ->
      if s.block_size <> block_size then
        invalid_arg "Blockdev.multi: subdevice block sizes differ";
      match s.backend with
      | Multi _ -> invalid_arg "Blockdev.multi: nested composite"
      | _ -> ())
    subs;
  let exts =
    List.map (fun (lstart, xlen, xsub, pstart) -> { lstart; xlen; xsub; pstart })
      extents
    |> List.sort (fun a b -> compare a.lstart b.lstart)
  in
  let nblocks =
    List.fold_left
      (fun expect e ->
        if e.lstart <> expect || e.xlen <= 0 then
          invalid_arg "Blockdev.multi: extents must tile the logical space";
        if e.xsub < 0 || e.xsub >= Array.length subs then
          invalid_arg "Blockdev.multi: bad subdevice index";
        if e.pstart < 0 || e.pstart + e.xlen > subs.(e.xsub).nblocks then
          invalid_arg "Blockdev.multi: extent exceeds its subdevice";
        expect + e.xlen)
      0 exts
  in
  if nblocks = 0 then invalid_arg "Blockdev.multi: no extents";
  let sub_extents =
    Array.init (Array.length subs) (fun i ->
        let mine =
          List.filter (fun e -> e.xsub = i) exts
          |> List.sort (fun a b -> compare a.pstart b.pstart)
        in
        ignore
          (List.fold_left
             (fun last e ->
               if e.pstart < last then
                 invalid_arg "Blockdev.multi: overlapping extents on a subdevice";
               e.pstart + e.xlen)
             0 mine);
        Array.of_list mine)
  in
  let m =
    {
      subs;
      extents = Array.of_list exts;
      sub_extents;
      frags = Hashtbl.create 64;
      parents = Hashtbl.create 32;
      next_tag = 1;
    }
  in
  let t =
    {
      backend = Multi m;
      store = Hashtbl.create 1;
      block_size;
      nblocks;
      queue = Ioqueue.create ();
      completed = [];
      injector = None;
      write_observer = None;
      tags = Hashtbl.create 1;
      tags_enabled = false;
    }
  in
  Array.iteri
    (fun i s ->
      set_injector s (Some (sub_injector t m i));
      set_write_observer s (Some (sub_observer t m i)))
    subs;
  t

(* --- public pipeline operations, composite-aware -------------------------- *)

let submit_read t blk n =
  match t.backend with
  | Multi m -> m_submit t m Io_error.Read blk n None
  | _ -> submit_read t blk n

let submit_write t blk data =
  match t.backend with
  | Multi m ->
      let len = Bytes.length data in
      if len = 0 || len mod t.block_size <> 0 then
        invalid_arg "Blockdev.submit_write: partial block";
      m_submit t m Io_error.Write blk (len / t.block_size) (Some data)
  | _ -> submit_write t blk data

let drain t = match t.backend with Multi m -> m_drain t m | _ -> drain t

let drain_tag t tag =
  match t.backend with Multi m -> m_drain_tag t m tag | _ -> drain_tag t tag

let reset_queue t =
  match t.backend with Multi m -> m_reset t m | _ -> reset_queue t

let pending t =
  match t.backend with
  | Multi m -> Array.fold_left (fun acc s -> acc + pending s) 0 m.subs
  | _ -> pending t

let set_queue t ?depth ?policy ?coalesce () =
  match t.backend with
  | Multi m -> Array.iter (fun s -> set_queue s ?depth ?policy ?coalesce ()) m.subs
  | _ -> set_queue t ?depth ?policy ?coalesce ()

let queue_depth t =
  match t.backend with Multi m -> queue_depth m.subs.(0) | _ -> queue_depth t

let queue_policy t =
  match t.backend with Multi m -> queue_policy m.subs.(0) | _ -> queue_policy t

let queue_coalesce t =
  match t.backend with
  | Multi m -> queue_coalesce m.subs.(0)
  | _ -> queue_coalesce t

let issue_units t units =
  match t.backend with
  | Multi m -> m_issue_units t m units
  | _ -> issue_units t units

let read t blk n =
  check_range t Io_error.Read blk n;
  let tag = submit_read t blk n in
  match (drain_tag t tag).cq_result with
  | Ok data -> data
  | Error e -> raise (Io_error.E e)

let write t blk data =
  let len = Bytes.length data in
  if len mod t.block_size <> 0 then invalid_arg "Blockdev.write: partial block";
  let n = len / t.block_size in
  check_range t Io_error.Write blk n;
  let tag = submit_write t blk data in
  match (drain_tag t tag).cq_result with
  | Ok _ -> ()
  | Error e -> raise (Io_error.E e)

let check_one_block t (blk, data) =
  if Bytes.length data <> t.block_size then
    invalid_arg "Blockdev.write_batch: data must be one block";
  check_range t Io_error.Write blk 1

let write_batch t blocks =
  List.iter (check_one_block t) blocks;
  issue_units t (List.map (fun (blk, data) -> (blk, [ data ])) blocks)

let write_batch_units t units =
  List.iter
    (fun (start, blocks) ->
      List.iteri (fun i data -> check_one_block t (start + i, data)) blocks)
    units;
  issue_units t units

let rec store_raw t blk data ~keep_sectors =
  let len = Bytes.length data in
  if len mod t.block_size <> 0 then invalid_arg "Blockdev.store_raw: partial block";
  let n = len / t.block_size in
  check_range t Io_error.Write blk n;
  match t.backend with
  | Multi m ->
      let spb = sectors_per_block t in
      List.iter
        (fun (si, pblk, off, flen) ->
          let keep =
            match keep_sectors with
            | None -> None
            | Some k -> Some (max 0 (min (flen * spb) (k - (off * spb))))
          in
          store_raw m.subs.(si) pblk
            (Bytes.sub data (off * t.block_size) (flen * t.block_size))
            ~keep_sectors:keep)
        (frags_of m blk n)
  | _ -> persist_request t blk data ~keep_sectors

let now t = dev_now t

let advance t dt =
  match t.backend with
  | Memory m -> m.clock <- m.clock +. dt
  | Timed { drive; _ } -> Drive.advance drive dt
  | Multi m ->
      (* think time passes for every spindle: sync to the composite clock,
         then move the whole array forward together *)
      let target = dev_now t +. dt in
      Array.iter
        (fun s ->
          let d = target -. dev_now s in
          if d > 0.0 then sub_advance s d)
        m.subs

let rec stats t =
  match t.backend with
  | Memory m -> m.stats
  | Timed { drive; _ } -> Drive.stats drive
  | Multi m ->
      let open Request.Stats in
      let acc = create () in
      Array.iter
        (fun sub ->
          let s = stats sub in
          acc.reads <- acc.reads + s.reads;
          acc.writes <- acc.writes + s.writes;
          acc.read_sectors <- acc.read_sectors + s.read_sectors;
          acc.write_sectors <- acc.write_sectors + s.write_sectors;
          acc.cache_hits <- acc.cache_hits + s.cache_hits;
          acc.busy_time <- acc.busy_time +. s.busy_time;
          acc.seek_time <- acc.seek_time +. s.seek_time;
          acc.rotation_time <- acc.rotation_time +. s.rotation_time;
          acc.transfer_time <- acc.transfer_time +. s.transfer_time;
          acc.overhead_time <- acc.overhead_time +. s.overhead_time;
          acc.cachehit_time <- acc.cachehit_time +. s.cachehit_time)
        m.subs;
      acc

let drive t =
  match t.backend with
  | Memory _ | Multi _ -> None
  | Timed { drive; _ } -> Some drive

let rec flush_device_cache t =
  match t.backend with
  | Memory _ -> ()
  | Timed { drive; _ } -> Drive.flush_cache drive
  | Multi m -> Array.iter flush_device_cache m.subs

let rec snapshot t =
  match t.backend with
  | Multi m -> Imulti { parts = Array.map snapshot m.subs; iextents = m.extents }
  | _ ->
      let blocks = Hashtbl.create (Hashtbl.length t.store) in
      Hashtbl.iter (fun k v -> Hashtbl.replace blocks k (Bytes.copy v)) t.store;
      Iflat
        {
          img_blocks = blocks;
          img_tags = Hashtbl.copy t.tags;
          img_tags_enabled = t.tags_enabled;
        }

(* Flatten a composite image into logical space: the reverse extent walk
   makes a crash image materialized from a multi-volume run an ordinary
   flat device image, which is what mount/fsck consume. *)
let rec flat_of_image img =
  match img with
  | Iflat f -> f
  | Imulti { parts; iextents } ->
      let blocks = Hashtbl.create 4096 in
      let tags = Hashtbl.create 64 in
      let enabled = ref false in
      Array.iteri
        (fun i part ->
          let pf = flat_of_image part in
          if pf.img_tags_enabled then enabled := true;
          Array.iter
            (fun e ->
              if e.xsub = i then
                for off = 0 to e.xlen - 1 do
                  (match Hashtbl.find_opt pf.img_blocks (e.pstart + off) with
                  | Some b -> Hashtbl.replace blocks (e.lstart + off) (Bytes.copy b)
                  | None -> ());
                  match Hashtbl.find_opt pf.img_tags (e.pstart + off) with
                  | Some v -> Hashtbl.replace tags (e.lstart + off) v
                  | None -> ()
                done)
            iextents)
        parts;
      { img_blocks = blocks; img_tags = tags; img_tags_enabled = !enabled }

let rec restore t img =
  match (t.backend, img) with
  | Multi m, Imulti { parts; _ } when Array.length parts = Array.length m.subs ->
      Array.iteri (fun i p -> restore m.subs.(i) p) parts;
      t.tags_enabled <-
        t.tags_enabled || Array.exists (fun s -> s.tags_enabled) m.subs
  | Multi m, _ ->
      (* a flat (or differently shaped) image onto a composite: split each
         logical block to its spindle *)
      let f = flat_of_image img in
      Array.iter
        (fun s ->
          Hashtbl.reset s.store;
          Hashtbl.reset s.tags)
        m.subs;
      Hashtbl.iter
        (fun blk b ->
          let e, off = locate m blk in
          store_block m.subs.(e.xsub) (e.pstart + off) (Bytes.copy b) 0)
        f.img_blocks;
      Hashtbl.iter
        (fun blk v ->
          let e, off = locate m blk in
          Hashtbl.replace m.subs.(e.xsub).tags (e.pstart + off) v)
        f.img_tags;
      if f.img_tags_enabled then enable_tags t
  | _, _ ->
      let f = flat_of_image img in
      Hashtbl.reset t.store;
      Hashtbl.iter (fun k v -> Hashtbl.replace t.store k (Bytes.copy v)) f.img_blocks;
      Hashtbl.reset t.tags;
      Hashtbl.iter (fun k v -> Hashtbl.replace t.tags k v) f.img_tags;
      t.tags_enabled <- t.tags_enabled || f.img_tags_enabled

let rec blocks_written img =
  match img with
  | Iflat f -> Hashtbl.length f.img_blocks
  | Imulti { parts; _ } ->
      Array.fold_left (fun acc p -> acc + blocks_written p) 0 parts

let write_torn t blk data ~keep_sectors =
  check_range t Io_error.Write blk 1;
  if Bytes.length data <> t.block_size then invalid_arg "Blockdev.write_torn";
  match t.backend with
  | Multi m ->
      let e, off = locate m blk in
      persist_request m.subs.(e.xsub) (e.pstart + off) data
        ~keep_sectors:(Some keep_sectors)
  | _ -> persist_request t blk data ~keep_sectors:(Some keep_sectors)

let corrupt_block t blk prng =
  check_range t Io_error.Write blk 1;
  match t.backend with
  | Multi m ->
      let e, off = locate m blk in
      Hashtbl.replace m.subs.(e.xsub).store (e.pstart + off)
        (Cffs_util.Prng.bytes prng t.block_size)
  | _ -> Hashtbl.replace t.store blk (Cffs_util.Prng.bytes prng t.block_size)

let save_file t path =
  let oc = open_out_bin path in
  (try
     (* Fix the file's extent first so unwritten tails stay sparse. *)
     seek_out oc ((t.nblocks * t.block_size) - 1);
     output_char oc '\000';
     (match t.backend with
     | Multi m ->
         Array.iter
           (fun e ->
             let sub = m.subs.(e.xsub) in
             for off = 0 to e.xlen - 1 do
               match Hashtbl.find_opt sub.store (e.pstart + off) with
               | Some data ->
                   seek_out oc ((e.lstart + off) * t.block_size);
                   output_bytes oc data
               | None -> ()
             done)
           m.extents
     | _ ->
         Hashtbl.iter
           (fun blk data ->
             seek_out oc (blk * t.block_size);
             output_bytes oc data)
           t.store);
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e)

let load_file ?(block_size = 4096) path =
  let ic = open_in_bin path in
  let t =
    try
      let len = in_channel_length ic in
      if len = 0 || len mod block_size <> 0 then
        invalid_arg "Blockdev.load_file: image size is not a block multiple";
      let nblocks = len / block_size in
      let t = memory ~block_size ~nblocks in
      let buf = Bytes.create block_size in
      let zero = Bytes.make block_size '\000' in
      for blk = 0 to nblocks - 1 do
        really_input ic buf 0 block_size;
        if not (Bytes.equal buf zero) then store_block t blk buf 0
      done;
      t
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  t
