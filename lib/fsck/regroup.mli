(** Crash-safe online regrouper: incremental group compaction.

    Walks the namespace the way the layout introspector does, selects
    {e broken} small files — regular files of at most [group_file_blocks]
    blocks whose data is not wholly inside one group frame — and migrates
    their blocks back into frames with C-FFS's copy-forward-then-switch
    move protocol ({!Cffs.regroup_prepare} / [commit] / [finish]).  The
    pass imposes the barrier discipline the mounted write policy needs:

    - [Journaled]: a whole batch (claims, copies, pointer switches, frees)
      commits as one logged transaction at a single sync, so every crash
      prefix replays to entirely-old or entirely-new layout;
    - otherwise: sync after the copies (data durable before any pointer
      names it), sync after the switches (each one sector-atomic), and
      only then free the sources.  A crash can leak claimed destination
      blocks, which fsck repair reclaims; no file is ever torn.

    Robustness: a source block that fails persistently mid-copy skips just
    that file (counted in [skipped_io]; the claimed destinations are
    released); a file no frame can host is counted ([no_room]) and left
    for a later pass, and a pass in which {e nothing} fit ends cleanly as
    [No_space] with the image fsck-clean;
    the cursor file ({!cursor_path}) records the last completed directory
    so a crashed or budget-capped pass resumes instead of restarting.
    Source reads are prefetched through the async ioqueue in
    [io_share]-run sub-batches, bounding the regrouper's share of the
    device queue so foreground traffic interleaves.  Registry counters
    live under [regroup.*]. *)

type spec = {
  max_moves : int option;  (** stop after this many file moves *)
  batch : int;  (** files per barrier group (default 8) *)
  io_share : int;
      (** source-read runs submitted per ioqueue drain (default 4); 0
          disables prefetching and reads synchronously *)
  checkpoint : bool;  (** maintain the on-image cursor file (default on) *)
  measure : bool;
      (** run the layout introspector before and after the pass to fill
          [residency_before]/[residency_after] (default on; tests and
          harnesses that crash mid-pass turn it off) *)
}

val default_spec : spec

val cursor_path : string
(** ["/.regroup"]: the checkpoint file (last completed directory path).
    Present only while a pass is incomplete; never itself regrouped. *)

type status =
  | Completed  (** full pass; cursor removed *)
  | Move_budget  (** [max_moves] reached; cursor kept for resumption *)
  | No_space
      (** clean ENOSPC end: broken files existed but not one could be
          placed; cursor kept *)

type outcome = {
  status : status;
  resumed : bool;  (** the pass continued from an existing cursor *)
  dirs_walked : int;
  scanned : int;  (** small-file candidates examined *)
  broken : int;  (** of those, not wholly inside one frame *)
  moved : int;  (** files migrated *)
  blocks_copied : int;
  skipped_io : int;  (** files skipped on a persistent source-read fault *)
  no_room : int;  (** broken files no frame could host (left for later) *)
  ineligible : int;  (** candidates the move protocol does not cover *)
  residency_before : float;  (** [Layout] group residency, when measured *)
  residency_after : float;
}

val run : ?spec:spec -> Cffs.t -> outcome
(** One regrouping pass over the whole namespace (resuming from the
    cursor if one exists).  Ends with a {!Cffs.sync}; on [Completed] the
    cursor file is gone and the image is fsck-clean. *)

val status_name : status -> string
val to_json : outcome -> Cffs_obs.Json.t
val pp : Format.formatter -> outcome -> unit
val to_string : outcome -> string
