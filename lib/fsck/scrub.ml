module Cache = Cffs_cache.Cache
module Blockdev = Cffs_blockdev.Blockdev
module Integrity = Cffs_blockdev.Integrity
module Registry = Cffs_obs.Registry
module Json = Cffs_obs.Json
module Csb = Cffs.Csb

let m_verified = Registry.counter "scrub.blocks_verified"
let m_prefetched = Registry.counter "scrub.blocks_prefetched"

(* Batch this scan window's in-use blocks through the tagged queue as
   contiguous group reads before verifying them one by one: on a timed
   device the sweep then streams off the platter in a few large transfers
   and the per-block verification reads hit the drive's on-board cache
   instead of paying a rotation each.  Read faults are swallowed here —
   [verify_block] is the authority on classifying them.  Pointless on the
   memory backend (no mechanical cost), so gated on having a drive. *)
let prefetch_window t dev ~start ~stop =
  if Blockdev.drive dev <> None then begin
    let cap = 64 in
    let flush_run run_start len =
      if len > 0 then begin
        ignore (Blockdev.submit_read dev run_start len);
        Registry.incr ~by:len m_prefetched
      end
    in
    let run_start = ref 0 and run_len = ref 0 in
    for blk = start to stop - 1 do
      if Cffs.block_in_use t blk then
        if !run_len > 0 && !run_start + !run_len = blk && !run_len < cap then
          incr run_len
        else begin
          flush_run !run_start !run_len;
          run_start := blk;
          run_len := 1
        end
    done;
    flush_run !run_start !run_len;
    ignore (Blockdev.drain dev)
  end

type report = {
  blocks_scanned : int;
  verified : int;
  mismatches : int;
  remapped : int;
  lost : int;
  replicas_repaired : int;
  primaries_repaired : int;
  map_repaired : bool;
  next : int;
  total : int;
}

let complete r = r.next >= r.total

(* One replicated metadata block: compare the primary (on the media,
   through the remap table) against its replica slot and heal whichever
   side is damaged.  Scrub runs just after [Cffs.sync], so primary, cache
   and replica agree unless the media corrupted one of them. *)
let scrub_meta_slot t ig ~slot blk st =
  let scanned, verified, mismatches, primaries, replicas, lost = st in
  let replica = Integrity.replica_read ig ~slot in
  match Integrity.verify_block ig blk with
  | Integrity.Verified | Integrity.Untagged -> (
      Registry.incr m_verified;
      let data = Cache.read (Cffs.cache t) blk in
      match replica with
      | Some r when Bytes.equal r data ->
          (scanned + 1, verified + 1, mismatches, primaries, replicas, lost)
      | Some _ | None ->
          (* replica missing, stale or damaged: refresh it from the good
             primary.  A [false] return means the spare pool is exhausted —
             the slot stays unreplicated, which is degradation, not loss. *)
          let repaired = Integrity.replica_write ig ~slot data in
          ( scanned + 1,
            verified + 1,
            mismatches,
            primaries,
            (replicas + if repaired then 1 else 0),
            lost ))
  | Integrity.Mismatch | Integrity.Unreadable -> (
      match replica with
      | Some r ->
          (* primary damaged, replica intact: restore the primary in place
             (remapping its sector if the fault is sticky). *)
          Integrity.rewrite_block ig blk r;
          (scanned + 1, verified, mismatches + 1, primaries + 1, replicas, lost)
      | None ->
          (scanned + 1, verified, mismatches + 1, primaries, replicas, lost + 1))

let scrub_metadata t ig =
  let sb = Cffs.superblock t in
  let st = ref (0, 0, 0, 0, 0, 0) in
  st := scrub_meta_slot t ig ~slot:0 0 !st;
  for cg = 0 to sb.Csb.cg_count - 1 do
    st := scrub_meta_slot t ig ~slot:(1 + cg) (Csb.cg_start sb cg) !st
  done;
  !st

let run ?(start = 0) ?limit t =
  match Cffs.integrity t with
  | None -> None
  | Some ig ->
      (* Make the media current first: replicas refresh, dirty blocks land,
         the checksum region is re-encoded.  Everything scrub then reads off
         the device is supposed to verify. *)
      Cffs.sync t;
      let sb = Cffs.superblock t in
      let total = Csb.total_blocks sb + 1 (* block 0 .. total_blocks *) in
      let limit = match limit with Some l -> max 0 l | None -> total in
      let remaps_before = Integrity.remap_count ig in
      let scanned, verified, mismatches, primaries, replicas, lost =
        if start = 0 then scrub_metadata t ig else (0, 0, 0, 0, 0, 0)
      in
      let scanned = ref scanned
      and verified = ref verified
      and mismatches = ref mismatches
      and lost = ref lost in
      let cache = Cffs.cache t in
      let stop = min total (start + limit) in
      prefetch_window t (Cache.device cache) ~start ~stop;
      for blk = start to stop - 1 do
        if Cffs.block_in_use t blk then begin
          incr scanned;
          match Integrity.verify_block ig blk with
          | Integrity.Verified | Integrity.Untagged ->
              Registry.incr m_verified;
              incr verified
          | Integrity.Mismatch | Integrity.Unreadable ->
              incr mismatches;
              if Cache.resident_block cache blk then
                (* the cache still holds the acknowledged contents: rewrite
                   them (remapping a sticky sector) before they are evicted *)
                Integrity.rewrite_block ig blk (Cache.read cache blk)
              else incr lost
        end
      done;
      let map_repaired = Integrity.repair_map_copies ig in
      (* rewrites above refreshed in-memory tags; re-encode the at-rest
         region so a crash right now still attaches cleanly *)
      Integrity.flush_tags ig;
      Some
        {
          blocks_scanned = !scanned;
          verified = !verified;
          mismatches = !mismatches;
          remapped = Integrity.remap_count ig - remaps_before;
          lost = !lost;
          replicas_repaired = replicas;
          primaries_repaired = primaries;
          map_repaired;
          next = stop;
          total;
        }

let run_to_completion ?(step = 4096) t =
  match run ~start:0 ~limit:step t with
  | None -> None
  | Some first ->
      let merge a b =
        {
          blocks_scanned = a.blocks_scanned + b.blocks_scanned;
          verified = a.verified + b.verified;
          mismatches = a.mismatches + b.mismatches;
          remapped = a.remapped + b.remapped;
          lost = a.lost + b.lost;
          replicas_repaired = a.replicas_repaired + b.replicas_repaired;
          primaries_repaired = a.primaries_repaired + b.primaries_repaired;
          map_repaired = a.map_repaired || b.map_repaired;
          next = b.next;
          total = b.total;
        }
      in
      let rec go acc =
        if complete acc then acc
        else
          match run ~start:acc.next ~limit:step t with
          | None -> acc
          | Some r -> go (merge acc r)
      in
      Some (go first)

let to_json r =
  Json.Obj
    [
      ("blocks_scanned", Json.Int r.blocks_scanned);
      ("verified", Json.Int r.verified);
      ("mismatches", Json.Int r.mismatches);
      ("remapped", Json.Int r.remapped);
      ("lost", Json.Int r.lost);
      ("replicas_repaired", Json.Int r.replicas_repaired);
      ("primaries_repaired", Json.Int r.primaries_repaired);
      ("map_repaired", Json.Bool r.map_repaired);
      ("next", Json.Int r.next);
      ("total", Json.Int r.total);
      ("complete", Json.Bool (complete r));
    ]

let pp ppf r =
  Format.fprintf ppf
    "scrubbed %d/%d blocks: %d verified, %d mismatches (%d primaries \
     restored, %d replicas refreshed, %d remapped), %d lost%s%s"
    r.next r.total r.verified r.mismatches r.primaries_repaired
    r.replicas_repaired r.remapped r.lost
    (if r.map_repaired then ", remap table repaired" else "")
    (if complete r then "" else " [partial]")

let to_string r = Format.asprintf "%a" pp r
