module Cache = Cffs_cache.Cache
module Codec = Cffs_util.Codec
module Inode = Cffs_vfs.Inode
module Bmap = Cffs_vfs.Bmap
module Layout = Ffs.Layout
module Dirent = Ffs.Dirent

(* Everything one walk of the namespace learns. *)
type survey = {
  refs : (int, int) Hashtbl.t;
  inodes : (int, Inode.t) Hashtbl.t;
  used : (int, int) Hashtbl.t; (* block -> first owner *)
  mutable dangling : (int * string * int) list;
  mutable dups : (int * int) list; (* blk, ino *)
  mutable out_of_range : (int * int) list; (* ino, blk *)
  mutable bad_dir_blocks : (int * int) list;
  mutable files : int;
  mutable dirs : int;
}

let block_in_data_area sb blk =
  let total = 1 + (sb.Layout.cg_count * sb.Layout.cg_size) in
  if blk < 1 || blk >= total then false
  else begin
    let cg = Layout.cg_of_block sb blk in
    let rel = blk - Layout.cg_start sb cg in
    rel > sb.Layout.itable_blocks
  end

let note_blocks t sb survey ~ino inode =
  let mark blk =
    if not (block_in_data_area sb blk) then
      survey.out_of_range <- (ino, blk) :: survey.out_of_range
    else if Hashtbl.mem survey.used blk then survey.dups <- (blk, ino) :: survey.dups
    else Hashtbl.replace survey.used blk ino
  in
  Bmap.iter (Ffs.cache t) inode ~data:mark ~meta:mark

let rec walk_dir t sb survey ~dir dinode =
  let cache = Ffs.cache t in
  let bsz = sb.Layout.block_size in
  let nblocks = (dinode.Inode.size + bsz - 1) / bsz in
  for lblk = 0 to nblocks - 1 do
    match Bmap.read cache dinode lblk with
    | Error _ -> survey.bad_dir_blocks <- (dir, lblk) :: survey.bad_dir_blocks
    | Ok None -> ()
    | Ok (Some p) ->
        let b = Cache.read cache p in
        Dirent.iter b (fun ~off:_ ~ino name -> visit t sb survey ~dir ~name ino)
  done

and visit t sb survey ~dir ~name ino =
  if not (Layout.valid_ino sb ino) then
    survey.dangling <- (dir, name, ino) :: survey.dangling
  else begin
    match Hashtbl.find_opt survey.refs ino with
    | Some n -> Hashtbl.replace survey.refs ino (n + 1)
    | None -> begin
        match Ffs.read_inode t ino with
        | Error _ -> survey.dangling <- (dir, name, ino) :: survey.dangling
        | Ok inode ->
            Hashtbl.replace survey.refs ino 1;
            Hashtbl.replace survey.inodes ino inode;
            note_blocks t sb survey ~ino inode;
            (match inode.Inode.kind with
            | Inode.Directory ->
                survey.dirs <- survey.dirs + 1;
                if name <> "." && name <> ".." then walk_dir t sb survey ~dir:ino inode
            | Inode.Regular -> survey.files <- survey.files + 1
            | Inode.Free ->
                survey.dangling <- (dir, name, ino) :: survey.dangling)
      end
  end

let run_survey t =
  let sb = Ffs.superblock t in
  let survey =
    {
      refs = Hashtbl.create 1024;
      inodes = Hashtbl.create 1024;
      used = Hashtbl.create 4096;
      dangling = [];
      dups = [];
      out_of_range = [];
      bad_dir_blocks = [];
      files = 0;
      dirs = 0;
    }
  in
  (* Seed the root without a reference: its own ".." entry plays the role
     of the missing parent link, so reference counting still comes out as
     nlink = 2 + subdirectories. *)
  (match Ffs.read_inode t (Ffs.root t) with
  | Error _ -> ()
  | Ok inode ->
      Hashtbl.replace survey.refs (Ffs.root t) 0;
      Hashtbl.replace survey.inodes (Ffs.root t) inode;
      note_blocks t sb survey ~ino:(Ffs.root t) inode;
      survey.dirs <- 1;
      walk_dir t sb survey ~dir:(Ffs.root t) inode);
  survey

let get_bit b base i = Codec.get_u8 b (base + (i lsr 3)) land (1 lsl (i land 7)) <> 0

(* Compare the on-disk bitmaps against what the walk found. *)
let bitmap_problems t survey =
  let sb = Ffs.superblock t in
  let cache = Ffs.cache t in
  let problems = ref [] in
  let orphans = ref [] in
  for cg = 0 to sb.Layout.cg_count - 1 do
    let hdr = Cache.read cache (Layout.cg_start sb cg) in
    (* Inode bitmap and orphan detection: read every slot of the table. *)
    let found_free_inodes = ref 0 and expected_free_inodes = ref 0 in
    for idx = 0 to sb.Layout.inodes_per_cg - 1 do
      let ino = (cg * sb.Layout.inodes_per_cg) + idx in
      if not (get_bit hdr Layout.hdr_inode_bitmap_off idx) then incr found_free_inodes;
      let reserved = ino < 2 in
      let referenced = Hashtbl.mem survey.refs ino in
      if referenced || reserved then ()
      else begin
        let blk, off = Layout.ino_location sb ino in
        let inode = Inode.decode (Cache.read cache blk) off in
        if inode.Inode.kind <> Inode.Free then
          orphans := (ino, inode.Inode.kind) :: !orphans
        else incr expected_free_inodes
      end
    done;
    if !found_free_inodes <> !expected_free_inodes then
      problems :=
        Report.Inode_bitmap_mismatch
          { cg; expected_free = !expected_free_inodes; found_free = !found_free_inodes }
        :: !problems;
    (* Block bitmap. *)
    let found_free = ref 0 and expected_free = ref 0 in
    for rel = 0 to sb.Layout.cg_size - 1 do
      let blk = Layout.cg_start sb cg + rel in
      if not (get_bit hdr (Layout.hdr_block_bitmap_off sb) rel) then incr found_free;
      let is_meta = rel <= sb.Layout.itable_blocks in
      if (not is_meta) && not (Hashtbl.mem survey.used blk) then incr expected_free
    done;
    if !found_free <> !expected_free then
      problems :=
        Report.Block_bitmap_mismatch
          { cg; expected_free = !expected_free; found_free = !found_free }
        :: !problems
  done;
  (!problems, !orphans)

(* Expected link count: every directory entry referencing the inode, with
   the root's synthetic parent ref already seeded by the walk. *)
let nlink_problems survey =
  Hashtbl.fold
    (fun ino inode acc ->
      let expected = Hashtbl.find survey.refs ino in
      if inode.Inode.nlink <> expected then
        Report.Wrong_nlink { ino; expected; found = inode.Inode.nlink } :: acc
      else acc)
    survey.inodes []

let build_report t ~repaired =
  match Layout.decode_sb (Cache.read (Ffs.cache t) 0) with
  | None ->
      {
        Report.problems = [ Report.Bad_superblock ];
        files = 0;
        dirs = 0;
        data_blocks = 0;
        repaired;
      }
  | Some _ ->
      let survey = run_survey t in
      let bitmap_probs, orphans = bitmap_problems t survey in
      let problems =
        List.map
          (fun (dir, name, ino) -> Report.Dangling_entry { dir; name; ino })
          survey.dangling
        @ List.map (fun (ino, kind) -> Report.Orphan_inode { ino; kind }) orphans
        @ List.map (fun (blk, ino) -> Report.Block_multiply_used { blk; ino }) survey.dups
        @ List.map (fun (ino, blk) -> Report.Block_out_of_range { ino; blk })
            survey.out_of_range
        @ List.map (fun (dir, lblk) -> Report.Bad_directory_block { dir; lblk })
            survey.bad_dir_blocks
        @ nlink_problems survey
        @ bitmap_probs
      in
      {
        Report.problems;
        files = survey.files;
        dirs = survey.dirs;
        data_blocks = Hashtbl.length survey.used;
        repaired;
      }

let check t = build_report t ~repaired:0

(* ------------------------------------------------------------------ *)
(* Repair. *)

let remove_dangling t ~dir ~name =
  let sb = Ffs.superblock t in
  let cache = Ffs.cache t in
  match Ffs.read_inode t dir with
  | Error _ -> ()
  | Ok dinode ->
      let bsz = sb.Layout.block_size in
      let nblocks = (dinode.Inode.size + bsz - 1) / bsz in
      let rec loop lblk =
        if lblk >= nblocks then ()
        else begin
          match Bmap.read cache dinode lblk with
          | Ok (Some p) ->
              let b = Cache.read cache p in
              if Dirent.remove b name <> None then Cache.write cache ~kind:`Meta p b
              else loop (lblk + 1)
          | Ok None | Error _ -> loop (lblk + 1)
        end
      in
      loop 0

let clear_inode t ino =
  let sb = Ffs.superblock t in
  let cache = Ffs.cache t in
  let blk, off = Layout.ino_location sb ino in
  let b = Cache.read cache blk in
  let old = Inode.decode b off in
  let cleared = Inode.empty () in
  cleared.Inode.generation <- old.Inode.generation + 1;
  Inode.encode cleared b off;
  Cache.write cache ~kind:`Meta blk b

let attach_lost_found t ino =
  (match Ffs.resolve t "/lost+found" with
  | Ok _ -> ()
  | Error _ -> ignore (Ffs.mkdir t "/lost+found"));
  match Ffs.resolve t "/lost+found" with
  | Error _ -> ()
  | Ok dir -> begin
      let name = Printf.sprintf "ino%06d" ino in
      match Ffs.hardlink t ~dir name ~ino with Ok () | Error _ -> ()
    end

(* A doubly-claimed or out-of-range block: punch the pointer out of the
   claimant recorded in the problem (the later one, for duplicates), leaving
   a hole; the bitmap rebuild then settles ownership on the survivor. *)
let punch_block t ~ino ~blk =
  let sb = Ffs.superblock t in
  let cache = Ffs.cache t in
  if Layout.valid_ino sb ino then begin
    let iblk, off = Layout.ino_location sb ino in
    let b = Cache.read cache iblk in
    let di = Inode.decode b off in
    if Bmap.punch cache di ~target:blk then begin
      Inode.encode di b off;
      Cache.write cache ~kind:`Meta iblk b
    end
  end

(* Recompute both bitmaps and the free counts of every group from a fresh
   survey, and write corrected inode link counts. *)
let rebuild_metadata t =
  let sb = Ffs.superblock t in
  let cache = Ffs.cache t in
  let survey = run_survey t in
  (* Link counts. *)
  Hashtbl.iter
    (fun ino inode ->
      let expected = Hashtbl.find survey.refs ino in
      if inode.Inode.nlink <> expected then begin
        let blk, off = Layout.ino_location sb ino in
        let b = Cache.read cache blk in
        let di = Inode.decode b off in
        di.Inode.nlink <- expected;
        Inode.encode di b off;
        Cache.write cache ~kind:`Meta blk b
      end)
    survey.inodes;
  (* Bitmaps. *)
  for cg = 0 to sb.Layout.cg_count - 1 do
    let hdr = Cache.read cache (Layout.cg_start sb cg) in
    let ibm_off = Layout.hdr_inode_bitmap_off in
    let bbm_off = Layout.hdr_block_bitmap_off sb in
    let free_inodes = ref 0 and free_blocks = ref 0 in
    Codec.zero hdr ibm_off ((sb.Layout.inodes_per_cg + 7) / 8);
    Codec.zero hdr bbm_off ((sb.Layout.cg_size + 7) / 8);
    let set base i =
      Codec.set_u8 hdr (base + (i lsr 3)) (Codec.get_u8 hdr (base + (i lsr 3)) lor (1 lsl (i land 7)))
    in
    for idx = 0 to sb.Layout.inodes_per_cg - 1 do
      let ino = (cg * sb.Layout.inodes_per_cg) + idx in
      if ino < 2 || Hashtbl.mem survey.refs ino then set ibm_off idx
      else incr free_inodes
    done;
    for rel = 0 to sb.Layout.cg_size - 1 do
      let blk = Layout.cg_start sb cg + rel in
      if rel <= sb.Layout.itable_blocks || Hashtbl.mem survey.used blk then
        set bbm_off rel
      else incr free_blocks
    done;
    Codec.set_u32 hdr Layout.hdr_free_blocks_off !free_blocks;
    Codec.set_u32 hdr Layout.hdr_free_inodes_off !free_inodes;
    Cache.write cache ~kind:`Meta (Layout.cg_start sb cg) hdr
  done

let repair t =
  let before = check t in
  (* An already-clean volume needs no repair writes at all: hand back the
     fresh report as-is, which also makes repair idempotent (a second run
     reports zero repairs). *)
  if Report.is_clean before then before
  else begin
    List.iter
      (fun p ->
        match p with
        | Report.Dangling_entry { dir; name; _ } -> remove_dangling t ~dir ~name
        | Report.Orphan_inode { ino; kind = Cffs_vfs.Inode.Regular } ->
            attach_lost_found t ino
        | Report.Orphan_inode { ino; _ } -> clear_inode t ino
        | Report.Block_multiply_used { blk; ino } -> punch_block t ~ino ~blk
        | Report.Block_out_of_range { ino; blk } -> punch_block t ~ino ~blk
        | Report.Bad_superblock | Report.Wrong_nlink _
        | Report.Block_bitmap_mismatch _ | Report.Inode_bitmap_mismatch _
        | Report.Bad_directory_block _ -> ())
      before.Report.problems;
    rebuild_metadata t;
    Ffs.sync t;
    let after = check t in
    { after with Report.repaired = max 0 (Report.count before - Report.count after) }
  end
