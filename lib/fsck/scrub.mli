(** Incremental media scrub for integrity-formatted C-FFS volumes.

    A scrub pass walks allocated blocks, verifies each against its CRC tag
    {e on the media} (through the remap table), and heals what it can:

    - replicated metadata (superblock, cylinder-group headers): a damaged
      primary is restored from its replica; a damaged or stale replica is
      refreshed from the primary;
    - data blocks whose acknowledged contents are still resident in the
      buffer cache are rewritten in place (remapping sticky bad sectors);
    - blocks that are damaged with no surviving copy are counted as
      [lost] — the per-file [EIO] the next reader will see;
    - both remap-table copies are re-persisted if either is damaged.

    Verified blocks bump the [scrub.blocks_verified] registry counter;
    repairs surface through the [integrity.*] counters maintained by
    {!Cffs_blockdev.Integrity}.

    Scrub is incremental: [run ~start ~limit] scans one window of the
    volume and returns a cursor ([next]) to resume from, so it can be
    interleaved with foreground work.  Every pass begins with a
    {!Cffs.sync} so the media is current before it is probed. *)

type report = {
  blocks_scanned : int;  (** allocated blocks probed in this window *)
  verified : int;  (** clean blocks (tag matched, or legitimately untagged) *)
  mismatches : int;  (** damaged blocks found (readable-but-wrong or dead) *)
  remapped : int;  (** sticky bad sectors moved to spares during repair *)
  lost : int;  (** damaged with no replica and no cached copy *)
  replicas_repaired : int;  (** replica slots refreshed from good primaries *)
  primaries_repaired : int;  (** metadata primaries restored from replicas *)
  map_repaired : bool;  (** a remap-table copy was damaged and re-persisted *)
  next : int;  (** resume cursor: first block not yet scanned *)
  total : int;  (** number of scannable blocks (scan is done at [next = total]) *)
}

val complete : report -> bool

val run : ?start:int -> ?limit:int -> Cffs.t -> report option
(** Scrub blocks [start, start + limit) (default: the whole volume).
    The replicated-metadata pass runs when [start = 0].  [None] if the
    volume has no integrity layer. *)

val run_to_completion : ?step:int -> Cffs.t -> report option
(** Repeated {!run} windows of [step] blocks (default 4096) until the
    cursor reaches the end; returns the merged report. *)

val to_json : report -> Cffs_obs.Json.t
val pp : Format.formatter -> report -> unit
val to_string : report -> string
