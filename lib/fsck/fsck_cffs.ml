module Cache = Cffs_cache.Cache
module Codec = Cffs_util.Codec
module Inode = Cffs_vfs.Inode
module Bmap = Cffs_vfs.Bmap
module Csb = Cffs.Csb
module Cdir = Cffs.Cdir
module Dirent = Ffs.Dirent

type survey = {
  refs : (int, int) Hashtbl.t;
  inodes : (int, Inode.t) Hashtbl.t;
  subdirs : (int, int) Hashtbl.t; (* dir ino -> child-directory count *)
  used : (int, int) Hashtbl.t;
  mutable dangling : (int * string * int) list;
  mutable dups : (int * int) list;
  mutable out_of_range : (int * int) list;
  mutable bad_dir_blocks : (int * int) list;
  mutable files : int;
  mutable dirs : int;
}

let block_in_data_area (sb : Csb.t) blk =
  let total = 1 + Csb.total_blocks sb in
  if blk < 1 || blk >= total then false
  else begin
    let cg = Csb.cg_of_block sb blk in
    blk - Csb.cg_start sb cg > 0
  end

let mark_used sb survey ~ino blk =
  if not (block_in_data_area sb blk) then
    survey.out_of_range <- (ino, blk) :: survey.out_of_range
  else if Hashtbl.mem survey.used blk then survey.dups <- (blk, ino) :: survey.dups
  else Hashtbl.replace survey.used blk ino

let note_blocks t sb survey ~ino inode =
  let mark blk = mark_used sb survey ~ino blk in
  Bmap.iter (Cffs.cache t) inode ~data:mark ~meta:mark

(* Entries of one directory data block, under either on-disk format. *)
let block_entries t ~pblock b =
  if (Cffs.superblock t).Csb.embed_inodes then
    Cdir.fold b ~init:[] ~f:(fun acc e ->
        let ino =
          if e.Cdir.embedded then
            Csb.embed_bit
            + (pblock * Cdir.chunks_per_block ~block_size:(Bytes.length b))
            + e.Cdir.chunk
          else e.Cdir.ext_ino
        in
        (e.Cdir.name, ino) :: acc)
  else Dirent.fold b ~init:[] ~f:(fun acc ~ino name -> (name, ino) :: acc)

let rec walk_dir t sb survey ~dir dinode =
  if Cffs.dir_indexed t dinode then walk_indexed_dir t sb survey ~dir dinode
  else walk_linear_dir t sb survey ~dir dinode

(* An indexed directory's table blocks and leaves are reached through the
   root's hash table, not the inode's block map, so the shared index walk
   both enumerates entries and claims those blocks for the bitmap survey. *)
and walk_indexed_dir t sb survey ~dir dinode =
  let entries = ref [] in
  Cffs.index_walk t dinode
    ~entry:(fun ~pblock b e ->
      let ino =
        if e.Cdir.embedded then
          Csb.embed_bit
          + (pblock * Cdir.chunks_per_block ~block_size:(Bytes.length b))
          + e.Cdir.chunk
        else e.Cdir.ext_ino
      in
      entries := (e.Cdir.name, ino) :: !entries)
    ~meta:(fun blk -> mark_used sb survey ~ino:dir blk)
    ~bad:(fun blk -> survey.bad_dir_blocks <- (dir, blk) :: survey.bad_dir_blocks);
  List.iter (fun (name, ino) -> visit t sb survey ~dir ~name ino) !entries

and walk_linear_dir t sb survey ~dir dinode =
  let cache = Cffs.cache t in
  let bsz = sb.Csb.block_size in
  let nblocks = (dinode.Inode.size + bsz - 1) / bsz in
  for lblk = 0 to nblocks - 1 do
    match Bmap.read cache dinode lblk with
    | Error _ -> survey.bad_dir_blocks <- (dir, lblk) :: survey.bad_dir_blocks
    | Ok None -> ()
    | Ok (Some p) -> (
        (* A directory block the media can no longer produce (sticky bad
           sector, checksum mismatch) is a survey finding, not a crash:
           record it and keep walking the rest of the tree. *)
        match Cache.read cache p with
        | exception Cffs_util.Io_error.E _ ->
            survey.bad_dir_blocks <- (dir, lblk) :: survey.bad_dir_blocks
        | b ->
            List.iter
              (fun (name, ino) -> visit t sb survey ~dir ~name ino)
              (block_entries t ~pblock:p b))
  done

and visit t sb survey ~dir ~name ino =
  match Hashtbl.find_opt survey.refs ino with
  | Some n -> Hashtbl.replace survey.refs ino (n + 1)
  | None -> begin
      match Cffs.read_inode t ino with
      | Error _ -> survey.dangling <- (dir, name, ino) :: survey.dangling
      | Ok inode ->
          Hashtbl.replace survey.refs ino 1;
          Hashtbl.replace survey.inodes ino inode;
          note_blocks t sb survey ~ino inode;
          (match inode.Inode.kind with
          | Inode.Directory ->
              survey.dirs <- survey.dirs + 1;
              Hashtbl.replace survey.subdirs dir
                (1 + Option.value ~default:0 (Hashtbl.find_opt survey.subdirs dir));
              walk_dir t sb survey ~dir:ino inode
          | Inode.Regular -> survey.files <- survey.files + 1
          | Inode.Free -> survey.dangling <- (dir, name, ino) :: survey.dangling)
    end

let run_survey t =
  let sb = Cffs.superblock t in
  let survey =
    {
      refs = Hashtbl.create 1024;
      inodes = Hashtbl.create 1024;
      subdirs = Hashtbl.create 64;
      used = Hashtbl.create 4096;
      dangling = [];
      dups = [];
      out_of_range = [];
      bad_dir_blocks = [];
      files = 0;
      dirs = 0;
    }
  in
  (match Cffs.read_inode t Csb.root_ino with
  | Error _ -> ()
  | Ok inode ->
      Hashtbl.replace survey.refs Csb.root_ino 0;
      Hashtbl.replace survey.inodes Csb.root_ino inode;
      note_blocks t sb survey ~ino:Csb.root_ino inode;
      survey.dirs <- 1;
      walk_dir t sb survey ~dir:Csb.root_ino inode);
  (* The external inode file's own blocks are metadata in use. *)
  (match Cffs.read_inode t Csb.ifile_ino with
  | Ok ifile -> note_blocks t sb survey ~ino:Csb.ifile_ino ifile
  | Error _ -> ());
  survey

(* C-FFS directories have no physical dot entries: a directory is referenced
   once by its parent, and the convention is nlink = 2 + subdirectories. *)
let expected_nlink survey ino (inode : Inode.t) =
  match inode.Inode.kind with
  | Inode.Directory ->
      let parent_refs = if ino = Csb.root_ino then 2 else 1 + Hashtbl.find survey.refs ino in
      parent_refs + Option.value ~default:0 (Hashtbl.find_opt survey.subdirs ino)
  | Inode.Regular | Inode.Free -> Hashtbl.find survey.refs ino

let nlink_problems survey =
  Hashtbl.fold
    (fun ino inode acc ->
      if ino = Csb.ifile_ino then acc
      else begin
        let expected = expected_nlink survey ino inode in
        if inode.Inode.nlink <> expected then
          Report.Wrong_nlink { ino; expected; found = inode.Inode.nlink } :: acc
        else acc
      end)
    survey.inodes []

let get_bit b base i = Codec.get_u8 b (base + (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bitmap_problems t survey =
  let sb = Cffs.superblock t in
  let cache = Cffs.cache t in
  let problems = ref [] in
  for cg = 0 to sb.Csb.cg_count - 1 do
    let hdr = Cache.read cache (Csb.cg_start sb cg) in
    let found_free = ref 0 and expected_free = ref 0 in
    for rel = 0 to sb.Csb.cg_size - 1 do
      let blk = Csb.cg_start sb cg + rel in
      if not (get_bit hdr Csb.hdr_block_bitmap_off rel) then incr found_free;
      if rel > 0 && not (Hashtbl.mem survey.used blk) then incr expected_free
    done;
    if !found_free <> !expected_free then
      problems :=
        Report.Block_bitmap_mismatch
          { cg; expected_free = !expected_free; found_free = !found_free }
        :: !problems
  done;
  !problems

(* Sweep the external inode file for allocated slots no entry references. *)
let orphan_externals t survey =
  let sb = Cffs.superblock t in
  let orphans = ref [] in
  for slot = 0 to sb.Csb.ext_high - 1 do
    let ino = Csb.ext_base + slot in
    if not (Hashtbl.mem survey.refs ino) then begin
      match Cffs.read_inode t ino with
      | Ok inode -> orphans := (ino, inode.Inode.kind) :: !orphans
      | Error _ -> ()
    end
  done;
  !orphans

let build_report t ~repaired =
  match
    try Csb.decode (Cache.read (Cffs.cache t) 0)
    with Cffs_util.Io_error.E _ -> None
  with
  | None ->
      {
        Report.problems = [ Report.Bad_superblock ];
        files = 0;
        dirs = 0;
        data_blocks = 0;
        repaired;
      }
  | Some _ ->
      let survey = run_survey t in
      let problems =
        List.map
          (fun (dir, name, ino) -> Report.Dangling_entry { dir; name; ino })
          survey.dangling
        @ List.map (fun (ino, kind) -> Report.Orphan_inode { ino; kind })
            (orphan_externals t survey)
        @ List.map (fun (blk, ino) -> Report.Block_multiply_used { blk; ino }) survey.dups
        @ List.map (fun (ino, blk) -> Report.Block_out_of_range { ino; blk })
            survey.out_of_range
        @ List.map (fun (dir, lblk) -> Report.Bad_directory_block { dir; lblk })
            survey.bad_dir_blocks
        @ nlink_problems survey
        @ bitmap_problems t survey
      in
      {
        Report.problems;
        files = survey.files;
        dirs = survey.dirs;
        data_blocks = Hashtbl.length survey.used;
        repaired;
      }

let check t = build_report t ~repaired:0

(* ------------------------------------------------------------------ *)
(* Repair. *)

(* Remove a name from a directory by rewriting the block that holds it. *)
let remove_dangling t ~dir ~name =
  let sb = Cffs.superblock t in
  let cache = Cffs.cache t in
  match Cffs.read_inode t dir with
  | Error _ -> ()
  | Ok dinode when Cffs.dir_indexed t dinode -> begin
      let target = ref None in
      Cffs.index_walk t dinode
        ~entry:(fun ~pblock _b e ->
          if !target = None && e.Cdir.name = name then
            target := Some (pblock, e.Cdir.chunk))
        ~meta:(fun _ -> ())
        ~bad:(fun _ -> ());
      match !target with
      | None -> ()
      | Some (p, chunk) ->
          let b = Cache.read cache p in
          Cdir.clear b chunk;
          Cache.write cache ~kind:`Meta p b
    end
  | Ok dinode ->
      let bsz = sb.Csb.block_size in
      let nblocks = (dinode.Inode.size + bsz - 1) / bsz in
      let rec loop lblk =
        if lblk >= nblocks then ()
        else begin
          match Bmap.read cache dinode lblk with
          | Ok (Some p) ->
              let b = Cache.read cache p in
              let removed =
                if sb.Csb.embed_inodes then begin
                  match Cdir.find b name with
                  | Some e ->
                      Cdir.clear b e.Cdir.chunk;
                      true
                  | None -> false
                end
                else Dirent.remove b name <> None
              in
              if removed then Cache.write cache ~kind:`Meta p b else loop (lblk + 1)
          | Ok None | Error _ -> loop (lblk + 1)
        end
      in
      loop 0

let attach_lost_found t ino =
  (match Cffs.resolve t "/lost+found" with
  | Ok _ -> ()
  | Error _ -> ignore (Cffs.mkdir t "/lost+found"));
  match Cffs.resolve t "/lost+found" with
  | Error _ -> ()
  | Ok dir -> begin
      let name = Printf.sprintf "ino%06d" ino in
      match Cffs.hardlink t ~dir name ~ino with Ok () | Error _ -> ()
    end

let clear_external t ino =
  let cleared = Inode.empty () in
  match Cffs.write_inode_raw t ino cleared with Ok () | Error _ -> ()

(* A doubly-claimed or out-of-range block: punch the pointer out of the
   claimant recorded in the problem (the later one, for duplicates), leaving
   a hole; the bitmap rebuild then settles ownership on the survivor. *)
let punch_block t ~ino ~blk =
  match Cffs.read_inode t ino with
  | Error _ -> ()
  | Ok inode ->
      if Bmap.punch (Cffs.cache t) inode ~target:blk then begin
        match Cffs.write_inode_raw t ino inode with Ok () | Error _ -> ()
      end

(* Rebuild per-group bitmaps and link counts from a fresh survey. *)
let rebuild_metadata t =
  let sb = Cffs.superblock t in
  let cache = Cffs.cache t in
  let survey = run_survey t in
  Hashtbl.iter
    (fun ino inode ->
      if ino <> Csb.ifile_ino then begin
        let expected = expected_nlink survey ino inode in
        if inode.Inode.nlink <> expected then begin
          inode.Inode.nlink <- expected;
          match Cffs.write_inode_raw t ino inode with Ok () | Error _ -> ()
        end
      end)
    survey.inodes;
  for cg = 0 to sb.Csb.cg_count - 1 do
    let hdr = Cache.read cache (Csb.cg_start sb cg) in
    Codec.zero hdr Csb.hdr_block_bitmap_off ((sb.Csb.cg_size + 7) / 8);
    let set i =
      let base = Csb.hdr_block_bitmap_off in
      Codec.set_u8 hdr (base + (i lsr 3)) (Codec.get_u8 hdr (base + (i lsr 3)) lor (1 lsl (i land 7)))
    in
    let free = ref 0 in
    for rel = 0 to sb.Csb.cg_size - 1 do
      let blk = Csb.cg_start sb cg + rel in
      if rel = 0 || Hashtbl.mem survey.used blk then set rel else incr free
    done;
    Codec.set_u32 hdr Csb.hdr_free_blocks_off !free;
    Cache.write cache ~kind:`Meta (Csb.cg_start sb cg) hdr
  done

let repair t =
  let before = check t in
  (* An already-clean volume needs no repair writes at all: hand back the
     fresh report as-is, which also makes repair idempotent (a second run
     reports zero repairs). *)
  if Report.is_clean before then before
  else begin
    List.iter
      (fun p ->
        match p with
        | Report.Dangling_entry { dir; name; _ } -> remove_dangling t ~dir ~name
        | Report.Orphan_inode { ino; kind = Cffs_vfs.Inode.Regular } ->
            attach_lost_found t ino
        | Report.Orphan_inode { ino; _ } -> clear_external t ino
        | Report.Block_multiply_used { blk; ino } -> punch_block t ~ino ~blk
        | Report.Block_out_of_range { ino; blk } -> punch_block t ~ino ~blk
        | Report.Bad_superblock | Report.Wrong_nlink _
        | Report.Block_bitmap_mismatch _ | Report.Inode_bitmap_mismatch _
        | Report.Bad_directory_block _ -> ())
      before.Report.problems;
    rebuild_metadata t;
    Cffs.sync t;
    let after = check t in
    { after with Report.repaired = max 0 (Report.count before - Report.count after) }
  end
