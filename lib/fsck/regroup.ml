module Cache = Cffs_cache.Cache
module Blockdev = Cffs_blockdev.Blockdev
module Fs_intf = Cffs_vfs.Fs_intf
module Inode = Cffs_vfs.Inode
module Errno = Cffs_vfs.Errno
module Obs = Cffs_obs.Registry
module Json = Cffs_obs.Json
module Sampler = Cffs_obs.Sampler

let m_passes = Obs.counter "regroup.passes"
let m_scanned = Obs.counter "regroup.files_scanned"
let m_moved = Obs.counter "regroup.files_moved"
let m_blocks = Obs.counter "regroup.blocks_copied"
let m_skipped_io = Obs.counter "regroup.files_skipped_io"
let m_enospc = Obs.counter "regroup.enospc_aborts"
let m_resumes = Obs.counter "regroup.resumes"
let m_cursor_writes = Obs.counter "regroup.cursor_writes"

type spec = {
  max_moves : int option;
  batch : int;
  io_share : int;
  checkpoint : bool;
  measure : bool;
}

let default_spec =
  { max_moves = None; batch = 8; io_share = 4; checkpoint = true; measure = true }

let cursor_path = "/.regroup"

type status = Completed | Move_budget | No_space

let status_name = function
  | Completed -> "completed"
  | Move_budget -> "move_budget"
  | No_space -> "no_space"

type outcome = {
  status : status;
  resumed : bool;
  dirs_walked : int;
  scanned : int;
  broken : int;
  moved : int;
  blocks_copied : int;
  skipped_io : int;
  no_room : int;
  ineligible : int;
  residency_before : float;
  residency_after : float;
}

(* Every directory path, sorted, so the cursor's "resume after this
   directory" is a plain string comparison against a deterministic
   order. *)
let collect_dirs fs =
  let rec go acc path =
    match Cffs.list_dir fs path with
    | Error _ -> acc
    | Ok names ->
        List.fold_left
          (fun acc name ->
            let child = if path = "/" then "/" ^ name else path ^ "/" ^ name in
            match Cffs.stat fs child with
            | Ok st when st.Fs_intf.st_kind = Inode.Directory -> go (child :: acc) child
            | Ok _ | Error _ -> acc)
          acc (List.sort compare names)
  in
  List.sort compare (go [ "/" ] "/")

(* Mutable pass state, shared by the per-directory workers. *)
type state = {
  fs : Cffs.t;
  spec : spec;
  mutable scanned : int;
  mutable broken : int;
  mutable moved : int;
  mutable blocks_copied : int;
  mutable skipped_io : int;
  mutable ineligible : int;
  mutable no_room : int;
}

let poll st =
  Sampler.poll_current ~now:(Blockdev.now (Cache.device (Cffs.cache st.fs)))

let budget_left st =
  match st.spec.max_moves with None -> true | Some m -> st.moved < m

(* Bounded-share prefetch: submit the batch's source runs through the
   async ioqueue a few runs per drain, so a foreground stream's requests
   interleave with the regrouper's at the queue rather than waiting out
   one giant drain. *)
let prefetch_sources st paths =
  if st.spec.io_share > 0 then begin
    try
    let runs =
      List.concat_map
        (fun p -> match Cffs.file_runs st.fs p with Ok rs -> rs | Error _ -> [])
        paths
    in
    let rec chunks = function
      | [] -> ()
      | rs ->
          let rec take n = function
            | x :: rest when n > 0 ->
                let got, rest = take (n - 1) rest in
                (x :: got, rest)
            | rest -> ([], rest)
          in
          let now, later = take st.spec.io_share rs in
          Cache.prefetch (Cffs.cache st.fs) now;
          chunks later
    in
    chunks runs
    (* Prefetch is advisory: a bad sector under a source run must surface
       through the copy path (which skips just that file), not here. *)
    with Cffs_util.Io_error.E _ -> ()
  end

(* The directory's frame census: how many of its small files' data blocks
   each frame currently holds.  The dir inode only remembers its last few
   frames; the census widens the destination candidates and weights them,
   so siblings pack back into each other's frames instead of each
   marooning itself in a fresh one. *)
let dir_census st paths =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun p ->
      match Cffs.file_runs st.fs p with
      | Error _ -> ()
      | Ok runs ->
          List.iter
            (fun (start, n) ->
              for i = 0 to n - 1 do
                match Cffs.frame_of_block st.fs (start + i) with
                | Some f ->
                    Hashtbl.replace tbl f
                      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl f))
                | None -> ()
              done)
            runs)
    paths;
  Hashtbl.fold (fun f n acc -> (f, n) :: acc) tbl []

(* One barrier group: prepare every file, then order the pointer switches
   and frees per the write policy (see the .mli).  A file no frame can
   host is counted ([no_room]) and skipped — other files may still fit in
   their own or their directory's frames; only a pass in which {e nothing}
   fit reports [No_space]. *)
let run_batch st ~dir_ino ~dir_census paths =
  prefetch_sources st paths;
  let plans = ref [] in
  List.iter
    (fun path ->
      if budget_left st then begin
        match Cffs.resolve st.fs path with
        | Error _ -> ()
        | Ok ino -> begin
            st.scanned <- st.scanned + 1;
            Obs.incr m_scanned;
            match Cffs.regroup_prepare ~dir_census st.fs ~dir:dir_ino ~ino with
            | Ok `Resident -> ()
            | Ok `Ineligible -> st.ineligible <- st.ineligible + 1
            | Ok (`Plan plan) ->
                st.broken <- st.broken + 1;
                plans := plan :: !plans;
                (* The budget counts prepared moves so a capped pass
                   claims no more than it will commit. *)
                st.moved <- st.moved + 1
            | Error Errno.Eio ->
                st.broken <- st.broken + 1;
                st.skipped_io <- st.skipped_io + 1;
                Obs.incr m_skipped_io
            | Error Errno.Enospc ->
                st.broken <- st.broken + 1;
                st.no_room <- st.no_room + 1;
                Obs.incr m_enospc
            | Error _ -> st.ineligible <- st.ineligible + 1
          end
      end)
    paths;
  let plans = List.rev !plans in
  if plans <> [] then begin
    let journaled = Cache.policy (Cffs.cache st.fs) = Cache.Journaled in
    (* Barrier 1: copied data and destination claims durable before any
       pointer names them.  Under [Journaled] the sync moves to the end of
       the batch: one transaction covers claim + switch + free, and the
       journal home-writes the copied data before the commit record. *)
    if not journaled then Cffs.sync st.fs;
    let committed =
      List.filter
        (fun plan ->
          match Cffs.regroup_commit st.fs plan with
          | Ok () ->
              Obs.incr m_moved;
              st.blocks_copied <- st.blocks_copied + Cffs.move_plan_blocks plan;
              Obs.incr ~by:(Cffs.move_plan_blocks plan) m_blocks;
              true
          | Error _ ->
              Cffs.regroup_abandon st.fs plan;
              st.moved <- st.moved - 1;
              false
          | exception Cffs_util.Io_error.E _ ->
              Cffs.regroup_abandon st.fs plan;
              st.moved <- st.moved - 1;
              st.skipped_io <- st.skipped_io + 1;
              Obs.incr m_skipped_io;
              false)
        plans
    in
    (* Barrier 2: the switches durable before the sources are freed for
       reuse. *)
    if not journaled then Cffs.sync st.fs;
    List.iter (fun plan -> Cffs.regroup_finish st.fs plan) committed;
    if journaled then Cffs.sync st.fs
  end;
  poll st

let rec batches n = function
  | [] -> []
  | l ->
      let rec take k = function
        | x :: rest when k > 0 ->
            let got, rest = take (k - 1) rest in
            (x :: got, rest)
        | rest -> ([], rest)
      in
      let b, rest = take n l in
      b :: batches n rest

(* All move candidates directly inside [dir]: small regular files, by
   size.  Eligibility proper (holes, pointer shape) is re-judged by
   [regroup_prepare]. *)
let candidates fs dir =
  let sb = Cffs.superblock fs in
  let bsz = sb.Cffs.Csb.block_size in
  let max_bytes = sb.Cffs.Csb.group_file_blocks * bsz in
  match Cffs.list_dir fs dir with
  | Error _ -> []
  | Ok names ->
      List.filter_map
        (fun name ->
          let path = if dir = "/" then "/" ^ name else dir ^ "/" ^ name in
          if path = cursor_path then None
          else begin
            match Cffs.stat fs path with
            | Ok st
              when st.Fs_intf.st_kind = Inode.Regular
                   && st.Fs_intf.st_size > 0
                   && st.Fs_intf.st_size <= max_bytes ->
                Some path
            | Ok _ | Error _ -> None
          end)
        (List.sort compare names)

let process_dir st dir =
  match Cffs.resolve st.fs dir with
  | Error _ -> ()
  | Ok dir_ino ->
      let paths = candidates st.fs dir in
      (* Place the biggest files first (first-fit decreasing): they need
         the scarce large free runs, and the small files then fill the
         gaps they leave — the standard bin-packing order. *)
      let nblocks p =
        match Cffs.file_runs st.fs p with
        | Ok runs -> List.fold_left (fun acc (_, n) -> acc + n) 0 runs
        | Error _ -> 0
      in
      let paths =
        List.stable_sort
          (fun a b -> compare (nblocks b) (nblocks a))
          paths
      in
      (* Refresh the census per batch: earlier batches' moves change which
         frames hold the directory's data, and the weights steer every
         later placement. *)
      List.iter
        (fun batch ->
          if budget_left st then
            run_batch st ~dir_ino ~dir_census:(dir_census st paths) batch)
        (batches (max 1 st.spec.batch) paths)

let write_cursor st dir =
  if st.spec.checkpoint then begin
    match Cffs.write_file st.fs cursor_path (Bytes.of_string dir) with
    | Ok () ->
        Obs.incr m_cursor_writes;
        Cffs.sync st.fs
    | Error _ -> ()
  end

let read_cursor fs =
  match Cffs.read_file fs cursor_path with
  | Ok b -> Some (Bytes.to_string b)
  | Error _ -> None

let residency fs = (Layout.cffs_report fs).Layout.group_residency

let run ?(spec = default_spec) fs =
  Obs.incr m_passes;
  let before = if spec.measure then residency fs else 0.0 in
  let cursor = if spec.checkpoint then read_cursor fs else None in
  let resumed = cursor <> None in
  if resumed then Obs.incr m_resumes;
  let st =
    {
      fs;
      spec;
      scanned = 0;
      broken = 0;
      moved = 0;
      blocks_copied = 0;
      skipped_io = 0;
      ineligible = 0;
      no_room = 0;
    }
  in
  let dirs =
    let all = collect_dirs fs in
    match cursor with
    | None -> all
    | Some last -> List.filter (fun d -> String.compare d last > 0) all
  in
  let walked = ref 0 in
  let last_done = ref cursor in
  let rec walk = function
    | [] -> Completed
    | dir :: rest ->
        if not (budget_left st) then Move_budget
        else begin
          (* A persistent fault while walking the directory itself skips
             that directory; the pass carries on. *)
          (try process_dir st dir
           with Cffs_util.Io_error.E _ ->
             st.skipped_io <- st.skipped_io + 1;
             Obs.incr m_skipped_io);
          incr walked;
          last_done := Some dir;
          (* Checkpoint: a crash or abort from here on resumes after
             [dir] instead of rescanning it. *)
          if rest <> [] then write_cursor st dir;
          walk rest
        end
  in
  let status =
    match walk dirs with
    | Completed when st.no_room > 0 && st.moved = 0 ->
        (* Broken files everywhere and not one of them placeable: the
           volume is out of frame space.  (A partial fit still completes —
           the counted [no_room] files simply wait for a later pass.) *)
        No_space
    | s -> s
  in
  (match status with
  | Completed ->
      if spec.checkpoint && Cffs.exists fs cursor_path then
        ignore (Cffs.unlink fs cursor_path)
  | Move_budget | No_space -> (
      match !last_done with Some d -> write_cursor st d | None -> ()));
  Cffs.sync fs;
  let after = if spec.measure then residency fs else 0.0 in
  {
    status;
    resumed;
    dirs_walked = !walked;
    scanned = st.scanned;
    broken = st.broken;
    moved = st.moved;
    blocks_copied = st.blocks_copied;
    skipped_io = st.skipped_io;
    no_room = st.no_room;
    ineligible = st.ineligible;
    residency_before = before;
    residency_after = after;
  }

let to_json o =
  Json.Obj
    [
      ("status", Json.String (status_name o.status));
      ("resumed", Json.Bool o.resumed);
      ("dirs_walked", Json.Int o.dirs_walked);
      ("scanned", Json.Int o.scanned);
      ("broken", Json.Int o.broken);
      ("moved", Json.Int o.moved);
      ("blocks_copied", Json.Int o.blocks_copied);
      ("skipped_io", Json.Int o.skipped_io);
      ("no_room", Json.Int o.no_room);
      ("ineligible", Json.Int o.ineligible);
      ("residency_before", Json.Float o.residency_before);
      ("residency_after", Json.Float o.residency_after);
    ]

let pp ppf o =
  Format.fprintf ppf
    "regroup: %s%s; %d dir(s), %d candidate(s), %d broken, %d moved (%d \
     block(s) copied), %d skipped on IO fault, %d without room, %d ineligible"
    (status_name o.status)
    (if o.resumed then " (resumed)" else "")
    o.dirs_walked o.scanned o.broken o.moved o.blocks_copied o.skipped_io
    o.no_room o.ineligible;
  if o.residency_before <> 0.0 || o.residency_after <> 0.0 then
    Format.fprintf ppf "; residency %.3f -> %.3f" o.residency_before
      o.residency_after

let to_string o = Format.asprintf "%a" pp o
