type problem =
  | Bad_superblock
  | Dangling_entry of { dir : int; name : string; ino : int }
  | Orphan_inode of { ino : int; kind : Cffs_vfs.Inode.kind }
  | Wrong_nlink of { ino : int; expected : int; found : int }
  | Block_multiply_used of { blk : int; ino : int }
  | Block_out_of_range of { ino : int; blk : int }
  | Block_bitmap_mismatch of { cg : int; expected_free : int; found_free : int }
  | Inode_bitmap_mismatch of { cg : int; expected_free : int; found_free : int }
  | Bad_directory_block of { dir : int; lblk : int }

type t = {
  problems : problem list;
  files : int;
  dirs : int;
  data_blocks : int;
  repaired : int;
}

let clean t = t.problems = []
let is_clean = clean
let count t = List.length t.problems

let kind_name = function
  | Cffs_vfs.Inode.Free -> "free"
  | Cffs_vfs.Inode.Regular -> "file"
  | Cffs_vfs.Inode.Directory -> "directory"

let pp_problem ppf = function
  | Bad_superblock -> Format.fprintf ppf "bad superblock"
  | Dangling_entry { dir; name; ino } ->
      Format.fprintf ppf "dangling entry %S in dir %d -> inode %d" name dir ino
  | Orphan_inode { ino; kind } ->
      Format.fprintf ppf "orphan %s inode %d" (kind_name kind) ino
  | Wrong_nlink { ino; expected; found } ->
      Format.fprintf ppf "inode %d nlink %d, expected %d" ino found expected
  | Block_multiply_used { blk; ino } ->
      Format.fprintf ppf "block %d claimed again by inode %d" blk ino
  | Block_out_of_range { ino; blk } ->
      Format.fprintf ppf "inode %d references out-of-range block %d" ino blk
  | Block_bitmap_mismatch { cg; expected_free; found_free } ->
      Format.fprintf ppf "cg %d block bitmap: %d free on disk, %d computed" cg
        found_free expected_free
  | Inode_bitmap_mismatch { cg; expected_free; found_free } ->
      Format.fprintf ppf "cg %d inode bitmap: %d free on disk, %d computed" cg
        found_free expected_free
  | Bad_directory_block { dir; lblk } ->
      Format.fprintf ppf "unreadable block %d of directory %d" lblk dir

let pp ppf t =
  Format.fprintf ppf "%d files, %d dirs, %d blocks; %d problem(s)%s" t.files t.dirs
    t.data_blocks (count t)
    (if t.repaired > 0 then Printf.sprintf ", %d repaired" t.repaired else "");
  List.iter (fun p -> Format.fprintf ppf "@.  - %a" pp_problem p) t.problems
