module Cache = Cffs_cache.Cache
module Codec = Cffs_util.Codec
module Inode = Cffs_vfs.Inode
module Fs_intf = Cffs_vfs.Fs_intf
module Json = Cffs_obs.Json
module Csb = Cffs.Csb

(* The layout introspector: walk a mounted image's namespace and
   allocation bitmaps and report where blocks actually live — the paper's
   claims made inspectable.  Group residency uses the file system's own
   grouping notion ({!Cffs.frame_of_block}): a configuration without
   explicit grouping reports zero residency rather than the accidental
   contiguity a purely geometric frame overlay would credit it with. *)

type extent_stats = {
  free_blocks : int;
  extents : int;  (** maximal runs of free blocks within the data areas *)
  largest : int;
  mean_len : float;
}

type report = {
  label : string;
  total_blocks : int;
  used_blocks : int;
  files : int;
  dirs : int;
  small_files : int;
      (** regular files with 1..group_file_blocks data blocks *)
  small_fully_grouped : int;
      (** small files whose data blocks all lie in one group frame *)
  group_residency : float;  (** small_fully_grouped / small_files *)
  embedded_inodes : int;
  external_inodes : int;
  group_blocks : int;  (** frame size; 0 when the FS has no grouping *)
  total_frames : int;
  frames_active : int;  (** frames holding at least one allocated block *)
  frames_free : int;
  frame_fill : int array;
      (** [frame_fill.(k)] = frames with exactly [k+1] allocated blocks *)
  grouped_fraction : float;
      (** {!Cffs.grouped_fraction} same-directory co-location; 0 for FFS *)
  indexed_dirs : int;  (** directories promoted to the hashed index *)
  index_blocks : int;  (** root + table + leaf blocks of those indexes *)
  index_leaf_fill : float;  (** live entries / leaf entry capacity *)
  free_ext : extent_stats;
}

(* Everything the generic builder needs from a file system, as closures so
   FFS and every C-FFS configuration go through the same analysis. *)
type source = {
  src_label : string;
  src_root : int;
  src_total : int;  (** device blocks covered by the layout (incl. block 0) *)
  src_readdir : int -> (string * int) list;
  src_stat : int -> Fs_intf.stat option;
  src_runs : int -> (int * int) list;
  src_data_block : int -> bool;
  src_block_used : int -> bool;
  src_frame_of : int -> int option;
  src_group_blocks : int;
  src_small_blocks : int;
  src_embedded : int -> bool;
  src_grouped_fraction : float;
  src_index_stats : Cffs.index_stats;
  src_usage : Fs_intf.fs_usage;
}

let build (src : source) =
  (* Namespace walk: counts, inode placement, per-small-file residency. *)
  let visited = Hashtbl.create 256 in
  let files = ref 0 and dirs = ref 1 (* root *) in
  let small = ref 0 and small_grouped = ref 0 in
  let embedded = ref 0 and external_ = ref 0 in
  let rec walk dir =
    List.iter
      (fun (name, ino) ->
        if name <> "." && name <> ".." && not (Hashtbl.mem visited ino)
        then begin
          Hashtbl.replace visited ino ();
          if src.src_embedded ino then incr embedded else incr external_;
          match src.src_stat ino with
          | None -> ()
          | Some st -> (
              match st.Fs_intf.st_kind with
              | Inode.Directory ->
                  incr dirs;
                  walk ino
              | Inode.Regular ->
                  incr files;
                  let runs = src.src_runs ino in
                  let nblocks =
                    List.fold_left (fun acc (_, n) -> acc + n) 0 runs
                  in
                  if nblocks > 0 && nblocks <= src.src_small_blocks then begin
                    incr small;
                    let frames =
                      List.concat_map
                        (fun (start, n) ->
                          List.init n (fun i -> src.src_frame_of (start + i)))
                        runs
                    in
                    match frames with
                    | Some f :: rest
                      when List.for_all (fun g -> g = Some f) rest ->
                        incr small_grouped
                    | _ -> ()
                  end
              | Inode.Free -> ())
        end)
      (src.src_readdir dir)
  in
  (* The root inode lives at a fixed location in both file systems, so it
     is excluded from the embedded/external tally. *)
  Hashtbl.replace visited src.src_root ();
  walk src.src_root;
  (* Physical sweep: frame occupancy and free-extent fragmentation over
     the data areas. *)
  let frame_used : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let frames : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let free_blocks = ref 0 and extents = ref 0 and largest = ref 0 in
  let run = ref 0 in
  let close_run () =
    if !run > 0 then begin
      incr extents;
      if !run > !largest then largest := !run;
      run := 0
    end
  in
  for blk = 0 to src.src_total - 1 do
    if not (src.src_data_block blk) then close_run ()
    else begin
      (match src.src_frame_of blk with
      | None -> ()
      | Some f ->
          Hashtbl.replace frames f ();
          if src.src_block_used blk then
            Hashtbl.replace frame_used f
              (1 + Option.value ~default:0 (Hashtbl.find_opt frame_used f)));
      if src.src_block_used blk then close_run ()
      else begin
        incr free_blocks;
        incr run
      end
    end
  done;
  close_run ();
  let gb = src.src_group_blocks in
  let frame_fill = Array.make (max 1 gb) 0 in
  Hashtbl.iter
    (fun _ n ->
      let k = min (max 1 gb) n in
      frame_fill.(k - 1) <- frame_fill.(k - 1) + 1)
    frame_used;
  let total_frames = Hashtbl.length frames in
  let frames_active = Hashtbl.length frame_used in
  let u = src.src_usage in
  {
    label = src.src_label;
    total_blocks = u.Fs_intf.total_blocks;
    used_blocks = u.Fs_intf.total_blocks - u.Fs_intf.free_blocks;
    files = !files;
    dirs = !dirs;
    small_files = !small;
    small_fully_grouped = !small_grouped;
    group_residency =
      (if !small = 0 then 0.0
       else float_of_int !small_grouped /. float_of_int !small);
    embedded_inodes = !embedded;
    external_inodes = !external_;
    group_blocks = gb;
    total_frames;
    frames_active;
    frames_free = total_frames - frames_active;
    frame_fill;
    grouped_fraction = src.src_grouped_fraction;
    indexed_dirs = src.src_index_stats.Cffs.idx_dirs;
    index_blocks = src.src_index_stats.Cffs.idx_blocks;
    index_leaf_fill = src.src_index_stats.Cffs.idx_leaf_fill;
    free_ext =
      {
        free_blocks = !free_blocks;
        extents = !extents;
        largest = !largest;
        mean_len =
          (if !extents = 0 then 0.0
           else float_of_int !free_blocks /. float_of_int !extents);
      };
  }

(* --- sources -------------------------------------------------------------- *)

let ok_or_default d = function Ok v -> v | Error _ -> d

let cffs_source (fs : Cffs.t) =
  let sb = Cffs.superblock fs in
  let total = 1 + Csb.total_blocks sb in
  let data_block blk =
    blk >= 1 && blk < total && blk - Csb.cg_start sb (Csb.cg_of_block sb blk) > 0
  in
  {
    src_label = Cffs.label fs;
    src_root = Csb.root_ino;
    src_total = total;
    src_readdir = (fun dir -> ok_or_default [] (Cffs.readdir fs ~dir));
    src_stat = (fun ino -> Result.to_option (Cffs.stat_ino fs ino));
    src_runs = (fun ino -> ok_or_default [] (Cffs.data_runs fs ~ino));
    src_data_block = data_block;
    src_block_used = Cffs.block_in_use fs;
    src_frame_of = Cffs.frame_of_block fs;
    src_group_blocks = (if (Cffs.config fs).Cffs.grouping then sb.Csb.group_blocks else 0);
    src_small_blocks = sb.Csb.group_file_blocks;
    src_embedded = Cffs.is_embedded_ino;
    src_grouped_fraction = Cffs.grouped_fraction fs;
    src_index_stats = Cffs.index_stats fs;
    src_usage = Cffs.usage fs;
  }

let get_bit b base i =
  Codec.get_u8 b (base + (i lsr 3)) land (1 lsl (i land 7)) <> 0

let ffs_source (fs : Ffs.t) =
  let module L = Ffs.Layout in
  let sb = Ffs.superblock fs in
  let cache = Ffs.cache fs in
  let total = 1 + (sb.L.cg_count * sb.L.cg_size) in
  (* One header read per group; bit indices are cg-relative. *)
  let hdrs =
    Array.init sb.L.cg_count (fun cg -> Cache.read cache (L.cg_start sb cg))
  in
  let data_block blk =
    blk >= 1 && blk < total
    &&
    let cg = L.cg_of_block sb blk in
    blk - L.cg_start sb cg > sb.L.itable_blocks
  in
  let block_used blk =
    let cg = L.cg_of_block sb blk in
    get_bit hdrs.(cg) (L.hdr_block_bitmap_off sb) (blk - L.cg_start sb cg)
  in
  {
    src_label = Ffs.label fs;
    src_root = sb.L.root_ino;
    src_total = total;
    src_readdir = (fun dir -> ok_or_default [] (Ffs.readdir fs ~dir));
    src_stat = (fun ino -> Result.to_option (Ffs.stat_ino fs ino));
    src_runs = (fun ino -> ok_or_default [] (Ffs.data_runs fs ~ino));
    src_data_block = data_block;
    src_block_used = block_used;
    src_frame_of = (fun _ -> None);  (* FFS has no grouping *)
    src_group_blocks = 0;
    src_small_blocks = Cffs.config_default.Cffs.group_file_blocks;
    src_embedded = (fun _ -> false);
    src_grouped_fraction = 0.0;
    src_index_stats =
      { Cffs.idx_dirs = 0; idx_blocks = 0; idx_leaves = 0; idx_leaf_fill = 0.0 };
    src_usage = Ffs.usage fs;
  }

let cffs_report fs = build (cffs_source fs)
let ffs_report fs = build (ffs_source fs)

(* --- exporters ------------------------------------------------------------ *)

let to_json r =
  Json.Obj
    [
      ("label", Json.String r.label);
      ("total_blocks", Json.Int r.total_blocks);
      ("used_blocks", Json.Int r.used_blocks);
      ("files", Json.Int r.files);
      ("dirs", Json.Int r.dirs);
      ("small_files", Json.Int r.small_files);
      ("small_fully_grouped", Json.Int r.small_fully_grouped);
      ("group_residency", Json.Float r.group_residency);
      ("embedded_inodes", Json.Int r.embedded_inodes);
      ("external_inodes", Json.Int r.external_inodes);
      ( "embedded_ratio",
        Json.Float
          (let n = r.embedded_inodes + r.external_inodes in
           if n = 0 then 0.0 else float_of_int r.embedded_inodes /. float_of_int n)
      );
      ("group_blocks", Json.Int r.group_blocks);
      ("total_frames", Json.Int r.total_frames);
      ("frames_active", Json.Int r.frames_active);
      ("frames_free", Json.Int r.frames_free);
      ( "frame_fill",
        Json.List (Array.to_list (Array.map (fun n -> Json.Int n) r.frame_fill))
      );
      ("grouped_fraction", Json.Float r.grouped_fraction);
      ("indexed_dirs", Json.Int r.indexed_dirs);
      ("index_blocks", Json.Int r.index_blocks);
      ("index_leaf_fill", Json.Float r.index_leaf_fill);
      ( "free_extents",
        Json.Obj
          [
            ("free_blocks", Json.Int r.free_ext.free_blocks);
            ("extents", Json.Int r.free_ext.extents);
            ("largest", Json.Int r.free_ext.largest);
            ("mean_len", Json.Float r.free_ext.mean_len);
          ] );
    ]

let pp ppf r =
  let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b in
  Format.fprintf ppf "%s@." r.label;
  Format.fprintf ppf "  blocks        %d used / %d total (%.1f%%)@."
    r.used_blocks r.total_blocks (pct r.used_blocks r.total_blocks);
  Format.fprintf ppf "  namespace     %d files, %d dirs@." r.files r.dirs;
  Format.fprintf ppf "  inodes        %d embedded, %d external (%.1f%% embedded)@."
    r.embedded_inodes r.external_inodes
    (pct r.embedded_inodes (r.embedded_inodes + r.external_inodes));
  Format.fprintf ppf
    "  small files   %d of %d fully group-resident (residency %.2f)@."
    r.small_fully_grouped r.small_files r.group_residency;
  Format.fprintf ppf "  grouped frac  %.2f (same-directory co-location)@."
    r.grouped_fraction;
  if r.indexed_dirs > 0 then
    Format.fprintf ppf
      "  dir index     %d indexed dirs over %d blocks (leaf fill %.2f)@."
      r.indexed_dirs r.index_blocks r.index_leaf_fill;
  if r.group_blocks > 0 then begin
    Format.fprintf ppf "  frames        %d-block frames: %d active, %d free of %d@."
      r.group_blocks r.frames_active r.frames_free r.total_frames;
    Format.fprintf ppf "  frame fill    ";
    Array.iteri
      (fun i n -> if n > 0 then Format.fprintf ppf "%d:%d " (i + 1) n)
      r.frame_fill;
    Format.fprintf ppf "(occupancy:frames)@."
  end
  else Format.fprintf ppf "  frames        (no explicit grouping)@.";
  Format.fprintf ppf
    "  free extents  %d extents over %d blocks (largest %d, mean %.1f)@."
    r.free_ext.extents r.free_ext.free_blocks r.free_ext.largest
    r.free_ext.mean_len
