(** Findings of a file-system check.

    The same report vocabulary serves both file systems; fsck for C-FFS
    differs mainly in {e how} inodes are found ("although inodes are no
    longer at statically determined locations, they can all be found by
    following the directory hierarchy", paper §3.1). *)

type problem =
  | Bad_superblock
  | Dangling_entry of { dir : int; name : string; ino : int }
      (** a name referencing a free or invalid inode *)
  | Orphan_inode of { ino : int; kind : Cffs_vfs.Inode.kind }
      (** an allocated inode no name references *)
  | Wrong_nlink of { ino : int; expected : int; found : int }
  | Block_multiply_used of { blk : int; ino : int }
  | Block_out_of_range of { ino : int; blk : int }
  | Block_bitmap_mismatch of { cg : int; expected_free : int; found_free : int }
  | Inode_bitmap_mismatch of { cg : int; expected_free : int; found_free : int }
  | Bad_directory_block of { dir : int; lblk : int }

type t = {
  problems : problem list;
  files : int;  (** regular files reachable from the root *)
  dirs : int;  (** directories reachable from the root *)
  data_blocks : int;  (** data + indirect blocks in use *)
  repaired : int;  (** problems fixed (repair runs only) *)
}

val clean : t -> bool
(** No problems found. *)

val is_clean : t -> bool
(** Alias of {!clean}. *)

val count : t -> int
val pp_problem : Format.formatter -> problem -> unit
val pp : Format.formatter -> t -> unit
