(** Layout introspector: where do an image's blocks actually live?

    Walks a mounted image's namespace and allocation bitmaps and reports
    the placement properties the paper's claims rest on — how many inodes
    are embedded, what fraction of small files is fully group-resident,
    how full the group frames are, and how fragmented the free space is.
    Fresh images score high; aging erodes residency; configurations
    without grouping (and FFS) report zero residency by construction,
    because residency is judged by the file system's own grouping notion
    rather than accidental physical contiguity. *)

type extent_stats = {
  free_blocks : int;
  extents : int;  (** maximal runs of free blocks within the data areas *)
  largest : int;
  mean_len : float;
}

type report = {
  label : string;
  total_blocks : int;
  used_blocks : int;
  files : int;
  dirs : int;
  small_files : int;
      (** regular files with 1..group_file_blocks data blocks *)
  small_fully_grouped : int;
      (** small files whose data blocks all lie in one group frame *)
  group_residency : float;  (** [small_fully_grouped / small_files] *)
  embedded_inodes : int;
  external_inodes : int;
  group_blocks : int;  (** frame size; 0 when the FS has no grouping *)
  total_frames : int;
  frames_active : int;  (** frames holding at least one allocated block *)
  frames_free : int;
  frame_fill : int array;
      (** [frame_fill.(k)] = frames with exactly [k+1] allocated blocks *)
  grouped_fraction : float;
      (** {!Cffs.grouped_fraction} same-directory co-location; 0 for FFS *)
  indexed_dirs : int;  (** directories promoted to the hashed index *)
  index_blocks : int;  (** root + table + leaf blocks of those indexes *)
  index_leaf_fill : float;  (** live entries / leaf entry capacity *)
  free_ext : extent_stats;
}

val cffs_report : Cffs.t -> report
val ffs_report : Ffs.t -> report
(** FFS is analysed with the same small-file threshold as the default
    C-FFS configuration so the two are comparable; its grouping metrics
    are zero by construction. *)

val to_json : report -> Cffs_obs.Json.t
(** Fixed key set regardless of configuration (zeros where a concept does
    not apply) — the always-present contract telemetry consumers rely
    on. *)

val pp : Format.formatter -> report -> unit
