(* The benchmark harness.

   Running `dune exec bench/main.exe` does two things:

   1. Regenerates every table and figure of the paper's evaluation at full
      scale on the simulated testbed (the same entry points as
      `cffs experiment all`).  This is the reproduction itself: compare the
      printed tables against EXPERIMENTS.md.

   2. Runs one Bechamel micro-benchmark per table/figure (at quick scale) and
      a few core-data-structure benchmarks, reporting how long the
      {e simulator machinery} takes on the host — useful for tracking
      performance regressions of this repository itself.

   `--quick` shrinks part 1 to smoke-test size; `--no-bechamel` skips part 2;
   `--bechamel-only` skips part 1.  `--json` skips both and instead emits
   the machine-readable telemetry document (quick-scale small-file runs
   with the full obs-counter delta) on stdout — the artifact CI tracks. *)

open Bechamel
open Toolkit
module Experiments = Cffs_harness.Experiments
module Cache = Cffs_cache.Cache

let quick_flag = Array.exists (( = ) "--quick") Sys.argv
let no_bechamel = Array.exists (( = ) "--no-bechamel") Sys.argv
let bechamel_only = Array.exists (( = ) "--bechamel-only") Sys.argv
let json_flag = Array.exists (( = ) "--json") Sys.argv

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's tables and figures. *)

let print_paper_tables () =
  let scale = if quick_flag then Experiments.quick else Experiments.full in
  Printf.printf
    "==============================================================\n\
     C-FFS reproduction: every table and figure of the evaluation\n\
     (simulated Seagate ST31200 testbed; see EXPERIMENTS.md)\n\
     ==============================================================\n\n%!";
  Experiments.run_all scale

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel benchmarks of the machinery. *)

let q = Experiments.quick

(* One Test.make per table/figure: each run regenerates that table at quick
   scale. *)
let table_tests =
  Test.make_grouped ~name:"tables"
    [
      Test.make ~name:"table1_drives"
        (Staged.stage (fun () -> ignore (Experiments.table1_drives ())));
      Test.make ~name:"fig2_access_time"
        (Staged.stage (fun () -> ignore (Experiments.fig2_access_time q)));
      Test.make ~name:"table2_setup_drive"
        (Staged.stage (fun () -> ignore (Experiments.table2_setup_drive ())));
      Test.make ~name:"fig4_smallfile_sync"
        (Staged.stage (fun () -> ignore (Experiments.smallfile q Cache.Sync_metadata)));
      Test.make ~name:"fig6_smallfile_delayed"
        (Staged.stage (fun () -> ignore (Experiments.smallfile q Cache.Delayed)));
      Test.make ~name:"fig7_size_sweep"
        (Staged.stage (fun () -> ignore (Experiments.fig7_size_sweep q)));
      Test.make ~name:"fig8_aging"
        (Staged.stage (fun () -> ignore (Experiments.fig8_aging q)));
      Test.make ~name:"table3_apps"
        (Staged.stage (fun () -> ignore (Experiments.table3_apps q)));
      Test.make ~name:"table_dirsize"
        (Staged.stage (fun () -> ignore (Experiments.table_dirsize ())));
      Test.make ~name:"table_large"
        (Staged.stage (fun () -> ignore (Experiments.table_large q)));
      Test.make ~name:"ablation_scheduler"
        (Staged.stage (fun () -> ignore (Experiments.ablation_scheduler q)));
      Test.make ~name:"ablation_group_size"
        (Staged.stage (fun () -> ignore (Experiments.ablation_group_size q)));
      Test.make ~name:"table_breakdown"
        (Staged.stage (fun () -> ignore (Experiments.table_breakdown q)));
      Test.make ~name:"ablation_readahead"
        (Staged.stage (fun () -> ignore (Experiments.ablation_readahead q)));
      Test.make ~name:"ablation_namei"
        (Staged.stage (fun () -> ignore (Experiments.ablation_namei q)));
    ]

(* Core machinery micro-benchmarks. *)
let core_tests =
  let module Drive = Cffs_disk.Drive in
  let module Profile = Cffs_disk.Profile in
  let module Request = Cffs_disk.Request in
  let module Blockdev = Cffs_blockdev.Blockdev in
  Test.make_grouped ~name:"core"
    [
      Test.make ~name:"drive_random_4k_service"
        (Staged.stage
           (let drive = Drive.create Profile.seagate_st31200 in
            let prng = Cffs_util.Prng.create 3 in
            let total = Drive.total_sectors drive in
            fun () ->
              let lba = Cffs_util.Prng.int prng (total - 8) in
              ignore (Drive.service drive (Request.read ~lba ~sectors:8))));
      Test.make ~name:"cffs_create_write_1k"
        (Staged.stage
           (let dev = Blockdev.memory ~block_size:4096 ~nblocks:262144 in
            let fs = Cffs.format dev in
            let payload = Bytes.make 1024 'x' in
            let i = ref 0 in
            ignore (Cffs.mkdir fs "/b");
            fun () ->
              incr i;
              ignore (Cffs.write_file fs (Printf.sprintf "/b/f%08d" !i) payload)));
      Test.make ~name:"cffs_lookup_read_1k"
        (Staged.stage
           (let dev = Blockdev.memory ~block_size:4096 ~nblocks:65536 in
            let fs = Cffs.format dev in
            let payload = Bytes.make 1024 'x' in
            ignore (Cffs.mkdir fs "/b");
            for i = 0 to 99 do
              ignore (Cffs.write_file fs (Printf.sprintf "/b/f%03d" i) payload)
            done;
            let i = ref 0 in
            fun () ->
              incr i;
              ignore (Cffs.read_file fs (Printf.sprintf "/b/f%03d" (!i mod 100)))));
      Test.make ~name:"ffs_create_write_1k"
        (Staged.stage
           (let dev = Blockdev.memory ~block_size:4096 ~nblocks:262144 in
            let fs = Ffs.format dev in
            let payload = Bytes.make 1024 'x' in
            let i = ref 0 in
            ignore (Ffs.mkdir fs "/b");
            fun () ->
              incr i;
              ignore (Ffs.write_file fs (Printf.sprintf "/b/f%08d" !i) payload)));
      Test.make ~name:"bitmap_find_clear_run"
        (Staged.stage
           (let b = Cffs_util.Bitmap.create 16384 in
            let prng = Cffs_util.Prng.create 5 in
            for _ = 0 to 8000 do
              Cffs_util.Bitmap.set b (Cffs_util.Prng.int prng 16384)
            done;
            fun () -> ignore (Cffs_util.Bitmap.find_clear_run b ~hint:0 ~len:16)));
    ]

let run_bechamel () =
  Printf.printf
    "\n==============================================================\n\
     Bechamel: host-side cost of the machinery (quick-scale runs)\n\
     ==============================================================\n\n%!";
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~kde:None ~stabilize:false ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let t =
    Cffs_util.Tablefmt.create
      [
        ("Benchmark", Cffs_util.Tablefmt.Left);
        ("time/run", Cffs_util.Tablefmt.Right);
        ("r²", Cffs_util.Tablefmt.Right);
      ]
  in
  let analyze test =
    let results = Benchmark.all cfg instances test in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols Instance.monotonic_clock results in
    Hashtbl.iter
      (fun name ols_result ->
        let time_str =
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] ->
              if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
              else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
              else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
              else Printf.sprintf "%.0f ns" ns
          | _ -> "?"
        in
        let r2 =
          match Analyze.OLS.r_square ols_result with
          | Some r -> Printf.sprintf "%.3f" r
          | None -> "-"
        in
        Cffs_util.Tablefmt.add_row t [ name; time_str; r2 ])
      results
  in
  analyze core_tests;
  analyze table_tests;
  Cffs_util.Tablefmt.print t

let () =
  if json_flag then begin
    let doc = Cffs_harness.Telemetry.document () in
    (* Smoke-level contract: the self-healing counters are part of
       cffs-telemetry-v2 and must be present (zeros included) in every
       document, integrity-formatted volume or not. *)
    let integrity_ok =
      match doc with
      | Cffs_obs.Json.Obj fields -> (
          match List.assoc_opt "integrity" fields with
          | Some (Cffs_obs.Json.Obj section) ->
              List.for_all
                (fun k -> List.mem_assoc k section)
                [
                  "integrity.checksum_failures";
                  "integrity.remaps";
                  "integrity.degraded_reads";
                  "scrub.blocks_verified";
                ]
          | _ -> false)
      | _ -> false
    in
    if not integrity_ok then begin
      prerr_endline
        "telemetry document is missing the integrity counter section";
      exit 1
    end;
    (* Same contract for the dentry/attribute cache section. *)
    let namei_ok =
      match doc with
      | Cffs_obs.Json.Obj fields -> (
          match List.assoc_opt "namei" fields with
          | Some (Cffs_obs.Json.Obj section) ->
              List.for_all
                (fun k -> List.mem_assoc k section)
                Cffs_harness.Telemetry.namei_counter_names
          | _ -> false)
      | _ -> false
    in
    if not namei_ok then begin
      prerr_endline "telemetry document is missing the namei counter section";
      exit 1
    end;
    (* v2 sections: the layout introspector's grouping evidence, the per-op
       latency attribution, and the sampled time series. *)
    let v2_ok =
      match doc with
      | Cffs_obs.Json.Obj fields ->
          List.for_all
            (fun k ->
              match List.assoc_opt k fields with
              | Some (Cffs_obs.Json.Obj _) -> true
              | _ -> false)
            [ "grouping"; "latency_breakdown"; "timeseries" ]
      | _ -> false
    in
    if not v2_ok then begin
      prerr_endline
        "telemetry document is missing a v2 section (grouping, \
         latency_breakdown, timeseries)";
      exit 1
    end;
    (* The multi-volume section: the A9 spindle-scaling sweep with
       per-spindle counters must always be present, and every
       multi-spindle point must actually carry its per-spindle
       breakdown. *)
    let volume_ok =
      match doc with
      | Cffs_obs.Json.Obj fields -> (
          match List.assoc_opt "volume" fields with
          | Some (Cffs_obs.Json.Obj section) -> (
              List.mem_assoc "small_read_speedup" section
              &&
              match List.assoc_opt "points" section with
              | Some (Cffs_obs.Json.List points) ->
                  points <> []
                  && List.for_all
                       (fun p ->
                         match p with
                         | Cffs_obs.Json.Obj pf -> (
                             match
                               ( List.assoc_opt "drives" pf,
                                 List.assoc_opt "spindles" pf )
                             with
                             | ( Some (Cffs_obs.Json.Int d),
                                 Some (Cffs_obs.Json.List sp) ) ->
                                 if d > 1 then List.length sp = d else sp = []
                             | _ -> false)
                         | _ -> false)
                       points
              | _ -> false)
          | _ -> false)
      | _ -> false
    in
    if not volume_ok then begin
      prerr_endline
        "telemetry document is missing the volume section (A9 scaling \
         points with per-spindle counters)";
      exit 1
    end;
    print_endline (Cffs_obs.Json.to_string_pretty doc)
  end
  else begin
    if not bechamel_only then print_paper_tables ();
    if not no_bechamel then run_bechamel ()
  end
