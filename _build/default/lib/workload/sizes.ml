module Prng = Cffs_util.Prng

type t = { name : string; sample : Prng.t -> int }

let lognormal_capped ~name ~mu ~sigma ~cap =
  let sample prng =
    let v = Prng.lognormal prng ~mu ~sigma in
    max 1 (min cap (int_of_float v))
  in
  { name; sample }

(* P(size < 8192) = 0.79 with median 2048:
   Phi((ln 8192 - mu) / sigma) = 0.79 with mu = ln 2048 gives sigma = 1.72. *)
let paper_1996 =
  lognormal_capped ~name:"paper-1996" ~mu:(log 2048.0) ~sigma:1.72
    ~cap:(1024 * 1024)

let fixed n = { name = Printf.sprintf "fixed-%d" n; sample = (fun _ -> n) }

let source_code =
  lognormal_capped ~name:"source-code" ~mu:(log 3072.0) ~sigma:1.1 ~cap:(64 * 1024)

let fraction_below t limit ~samples =
  let prng = Prng.create 0xD15C in
  let below = ref 0 in
  for _ = 1 to samples do
    if t.sample prng < limit then incr below
  done;
  float_of_int !below /. float_of_int samples
