module Blockdev = Cffs_blockdev.Blockdev
module Request = Cffs_disk.Request

type t = {
  fs : Cffs_vfs.Fs_intf.packed;
  dev : Blockdev.t;
  cpu_per_op : float;
}

let make ?(cpu_per_op = 100e-6) fs dev = { fs; dev; cpu_per_op }

let now t = Blockdev.now t.dev
let label t = Cffs_vfs.Fs_intf.packed_label t.fs

type measure = {
  seconds : float;
  requests : int;
  reads : int;
  writes : int;
  bytes_moved : int;
  cache_hits : int;
  seek_s : float;
  rotation_s : float;
  transfer_s : float;
}

let measured t f =
  let before = Request.Stats.copy (Blockdev.stats t.dev) in
  let t0 = now t in
  f ();
  let d = Request.Stats.diff (Blockdev.stats t.dev) before in
  {
    seconds = now t -. t0;
    requests = Request.Stats.requests d;
    reads = d.Request.Stats.reads;
    writes = d.Request.Stats.writes;
    bytes_moved = Request.Stats.bytes d;
    cache_hits = d.Request.Stats.cache_hits;
    seek_s = d.Request.Stats.seek_time;
    rotation_s = d.Request.Stats.rotation_time;
    transfer_s = d.Request.Stats.transfer_time;
  }

let pp_measure ppf m =
  Format.fprintf ppf "%.3fs, %d reqs (%dr/%dw, %d hits), %s"
    m.seconds m.requests m.reads m.writes m.cache_hits
    (Cffs_util.Tablefmt.fmt_bytes m.bytes_moved)
