(** Large-file sequential I/O (paper §4.4): explicit grouping must leave
    large-file performance unchanged, since only the first few blocks of a
    small file are group-allocated and large files use ordinary clustered
    placement. *)

type result = {
  write_mb_per_s : float;
  read_mb_per_s : float;  (** cold-cache sequential read *)
  rewrite_mb_per_s : float;
}

val run : ?file_mb:int -> ?chunk_kb:int -> Env.t -> result
(** Defaults: one 64 MB file written, read and rewritten sequentially in
    64 KB chunks. *)
