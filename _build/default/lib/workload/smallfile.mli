(** The LFS small-file micro-benchmark ([Rosenblum92]), as used in the
    paper's §4.2: create and write N small files, read them back in the same
    order from a cold cache, overwrite them in place, then remove them.  All
    dirty blocks are forced back to disk before each phase's measurement
    completes, as in the paper. *)

type phase = Create | Read | Overwrite | Delete

val phase_name : phase -> string
val phases : phase list

type result = {
  phase : phase;
  nfiles : int;
  file_bytes : int;
  measure : Env.measure;
  files_per_sec : float;
  kb_per_sec : float;  (** useful payload per second *)
  requests_per_file : float;
}

val run :
  ?nfiles:int ->
  ?file_bytes:int ->
  ?files_per_dir:int ->
  ?prng_seed:int ->
  Env.t ->
  result list
(** Defaults: 10000 files of 1 KB, 100 files per directory (the benchmark's
    classic shape).  Directories are created under [/smallfile] before
    measurement starts.  The cache is dropped (remount) between the create
    and read phases so reads are cold. *)
