module Fs_intf = Cffs_vfs.Fs_intf
module Blockdev = Cffs_blockdev.Blockdev

type result = {
  write_mb_per_s : float;
  read_mb_per_s : float;
  rewrite_mb_per_s : float;
}

let run ?(file_mb = 64) ?(chunk_kb = 64) (env : Env.t) =
  let (Fs_intf.Packed ((module F), fs)) = env.Env.fs in
  let check what = function
    | Ok v -> v
    | Error e ->
        failwith (Printf.sprintf "largefile %s: %s" what (Cffs_vfs.Errno.to_string e))
  in
  let op () = Blockdev.advance env.Env.dev env.Env.cpu_per_op in
  let chunk = Bytes.make (chunk_kb * 1024) 'L' in
  let chunks = file_mb * 1024 / chunk_kb in
  let path = "/large.bin" in
  let mb = float_of_int file_mb in
  let rate (m : Env.measure) = if m.Env.seconds <= 0.0 then 0.0 else mb /. m.Env.seconds in
  check "create" (F.create fs path);
  let write_m =
    Env.measured env (fun () ->
        for i = 0 to chunks - 1 do
          op ();
          check "write" (F.write fs path ~off:(i * chunk_kb * 1024) chunk)
        done;
        F.sync fs)
  in
  F.remount fs;
  let read_m =
    Env.measured env (fun () ->
        for i = 0 to chunks - 1 do
          op ();
          ignore
            (check "read" (F.read fs path ~off:(i * chunk_kb * 1024) ~len:(chunk_kb * 1024)))
        done)
  in
  let rewrite_m =
    Env.measured env (fun () ->
        for i = 0 to chunks - 1 do
          op ();
          check "rewrite" (F.write fs path ~off:(i * chunk_kb * 1024) chunk)
        done;
        F.sync fs)
  in
  {
    write_mb_per_s = rate write_m;
    read_mb_per_s = rate read_m;
    rewrite_mb_per_s = rate rewrite_m;
  }
