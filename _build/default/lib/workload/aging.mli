(** File-system aging (paper §4.3).

    "The program simply creates and deletes a large number of files.  The
    probability that the next operation performed is a file creation (rather
    than a deletion) is taken from a distribution centered around a desired
    file system utilization" — after [Herrin93].

    Aging fragments the free space, so explicit grouping increasingly fails
    to find whole free frames and falls back to scattered single-block
    allocation; the experiment then measures how small-file performance and
    the grouping-quality metric degrade with utilization. *)

type spec = {
  target_utilization : float;  (** fraction of data blocks in use, 0..1 *)
  operations : int;  (** create/delete steps to run *)
  dirs : int;  (** directories the churn spreads over *)
  sizes : Sizes.t;
  seed : int;
}

val default_spec : float -> spec
(** [default_spec u] ages toward utilization [u] with 30000 operations over
    20 directories using the paper's 1996 size distribution. *)

type outcome = {
  reached_utilization : float;
  files_alive : int;
  creates : int;
  deletes : int;
  failed_creates : int;  (** ENOSPC during aging (high utilizations) *)
}

val run : Env.t -> spec -> outcome
(** Ages the file system in place (under [/aged]); time spent aging is not
    part of any measurement — callers measure afterwards. *)
