module Fs_intf = Cffs_vfs.Fs_intf
module Prng = Cffs_util.Prng
module Blockdev = Cffs_blockdev.Blockdev

type app = Untar | Search | Compile | Pack | Copy | Clean

let app_name = function
  | Untar -> "untar"
  | Search -> "search"
  | Compile -> "compile"
  | Pack -> "pack"
  | Copy -> "copy"
  | Clean -> "clean"

let apps = [ Untar; Search; Compile; Pack; Copy; Clean ]

type spec = { dirs : int; files_per_dir : int; sizes : Sizes.t; seed : int }

let default_spec =
  { dirs = 16; files_per_dir = 25; sizes = Sizes.source_code; seed = 0x50F7 }

type result = { app : app; files : int; bytes : int; measure : Env.measure }

let src_dir d = Printf.sprintf "/src/m%02d" d

let src_file d f =
  let ext = if f mod 4 = 3 then "h" else "c" in
  Printf.sprintf "%s/file%03d.%s" (src_dir d) f ext

let obj_file d f = Printf.sprintf "/obj/m%02d_file%03d.o" d f

let iter_files spec f =
  for d = 0 to spec.dirs - 1 do
    for i = 0 to spec.files_per_dir - 1 do
      f d i
    done
  done

let run ?(spec = default_spec) (env : Env.t) =
  let (Fs_intf.Packed ((module F), fs)) = env.Env.fs in
  let prng = Prng.create spec.seed in
  let op () = Blockdev.advance env.Env.dev env.Env.cpu_per_op in
  let check what = function
    | Ok v -> v
    | Error e ->
        failwith (Printf.sprintf "appbench %s: %s" what (Cffs_vfs.Errno.to_string e))
  in
  (* Pre-compute deterministic file sizes. *)
  let size = Array.init spec.dirs (fun _ ->
      Array.init spec.files_per_dir (fun _ -> spec.sizes.Sizes.sample prng))
  in
  let total_files = spec.dirs * spec.files_per_dir in
  let total_bytes =
    Array.fold_left (fun acc a -> Array.fold_left ( + ) acc a) 0 size
  in
  let results = ref [] in
  let phase app ~files ~bytes f =
    let m =
      Env.measured env (fun () ->
          f ();
          op ();
          F.sync fs)
    in
    results := { app; files; bytes; measure = m } :: !results
  in
  (* Untar: build the tree. *)
  phase Untar ~files:total_files ~bytes:total_bytes (fun () ->
      op ();
      check "mkdir /src" (F.mkdir fs "/src");
      for d = 0 to spec.dirs - 1 do
        op ();
        check "mkdir" (F.mkdir fs (src_dir d))
      done;
      iter_files spec (fun d i ->
          op ();
          check "untar write"
            (F.write_file fs (src_file d i) (Bytes.make size.(d).(i) 's'))));
  (* Search: cold-cache read of every file. *)
  F.remount fs;
  phase Search ~files:total_files ~bytes:total_bytes (fun () ->
      iter_files spec (fun d i ->
          op ();
          ignore (check "search read" (F.read_file fs (src_file d i)))));
  (* Compile: .c -> .o plus header reads, then a link step. *)
  let c_files = ref [] in
  iter_files spec (fun d i -> if i mod 4 <> 3 then c_files := (d, i) :: !c_files);
  let objs_bytes = ref 0 in
  phase Compile ~files:(List.length !c_files) ~bytes:total_bytes (fun () ->
      op ();
      check "mkdir /obj" (F.mkdir fs "/obj");
      List.iter
        (fun (d, i) ->
          op ();
          ignore (check "compile read" (F.read_file fs (src_file d i)));
          (* A few header inclusions from around the project. *)
          for _ = 1 to 3 do
            let hd = Prng.int prng spec.dirs in
            let hf = (Prng.int prng (max 1 (spec.files_per_dir / 4)) * 4) + 3 in
            if hf < spec.files_per_dir then begin
              op ();
              ignore (check "header read" (F.read_file fs (src_file hd hf)))
            end
          done;
          let osize = size.(d).(i) * 3 / 2 in
          objs_bytes := !objs_bytes + osize;
          op ();
          check "emit object" (F.write_file fs (obj_file d i) (Bytes.make osize 'o')))
        !c_files;
      (* Link: read every object, write the binary. *)
      let binary = Buffer.create (max 1 !objs_bytes) in
      List.iter
        (fun (d, i) ->
          op ();
          let o = check "link read" (F.read_file fs (obj_file d i)) in
          Buffer.add_bytes binary o)
        !c_files;
      op ();
      check "link write" (F.write_file fs "/obj/app.bin" (Buffer.to_bytes binary)));
  (* Pack: tar the source tree into one archive. *)
  phase Pack ~files:total_files ~bytes:total_bytes (fun () ->
      let archive = Buffer.create total_bytes in
      iter_files spec (fun d i ->
          op ();
          Buffer.add_bytes archive (check "pack read" (F.read_file fs (src_file d i))));
      op ();
      check "pack write" (F.write_file fs "/archive.tar" (Buffer.to_bytes archive)));
  (* Copy: duplicate the tree inside the file system. *)
  phase Copy ~files:total_files ~bytes:total_bytes (fun () ->
      op ();
      check "mkdir /copy" (F.mkdir fs "/copy");
      for d = 0 to spec.dirs - 1 do
        op ();
        check "mkdir" (F.mkdir fs (Printf.sprintf "/copy/m%02d" d))
      done;
      iter_files spec (fun d i ->
          op ();
          let data = check "copy read" (F.read_file fs (src_file d i)) in
          op ();
          let dst = Printf.sprintf "/copy/m%02d/file%03d" d i in
          check "copy write" (F.write_file fs dst data)));
  (* Clean: remove objects, archive and the copy. *)
  phase Clean
    ~files:(List.length !c_files + 1 + total_files)
    ~bytes:(!objs_bytes + total_bytes)
    (fun () ->
      List.iter
        (fun (d, i) ->
          op ();
          check "clean obj" (F.unlink fs (obj_file d i)))
        !c_files;
      op ();
      check "clean bin" (F.unlink fs "/obj/app.bin");
      op ();
      check "clean archive" (F.unlink fs "/archive.tar");
      iter_files spec (fun d i ->
          op ();
          check "clean copy" (F.unlink fs (Printf.sprintf "/copy/m%02d/file%03d" d i))));
  List.rev !results
