module Fs_intf = Cffs_vfs.Fs_intf
module Errno = Cffs_vfs.Errno
module Blockdev = Cffs_blockdev.Blockdev
module Prng = Cffs_util.Prng

type op =
  | T_mkdir of string
  | T_create of string
  | T_write_file of string * int
  | T_write of string * int * int
  | T_read_file of string
  | T_read of string * int * int
  | T_unlink of string
  | T_rmdir of string
  | T_rename of string * string
  | T_link of string * string
  | T_truncate of string * int
  | T_sync

type t = op list

let op_to_string = function
  | T_mkdir p -> Printf.sprintf "mkdir %s" p
  | T_create p -> Printf.sprintf "create %s" p
  | T_write_file (p, n) -> Printf.sprintf "write_file %s %d" p n
  | T_write (p, off, n) -> Printf.sprintf "write %s %d %d" p off n
  | T_read_file p -> Printf.sprintf "read_file %s" p
  | T_read (p, off, n) -> Printf.sprintf "read %s %d %d" p off n
  | T_unlink p -> Printf.sprintf "unlink %s" p
  | T_rmdir p -> Printf.sprintf "rmdir %s" p
  | T_rename (a, b) -> Printf.sprintf "rename %s %s" a b
  | T_link (a, b) -> Printf.sprintf "link %s %s" a b
  | T_truncate (p, n) -> Printf.sprintf "truncate %s %d" p n
  | T_sync -> "sync"

let op_of_string line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "mkdir"; p ] -> Some (T_mkdir p)
  | [ "create"; p ] -> Some (T_create p)
  | [ "write_file"; p; n ] -> Option.map (fun n -> T_write_file (p, n)) (int_of_string_opt n)
  | [ "write"; p; off; n ] -> begin
      match (int_of_string_opt off, int_of_string_opt n) with
      | Some off, Some n -> Some (T_write (p, off, n))
      | _ -> None
    end
  | [ "read_file"; p ] -> Some (T_read_file p)
  | [ "read"; p; off; n ] -> begin
      match (int_of_string_opt off, int_of_string_opt n) with
      | Some off, Some n -> Some (T_read (p, off, n))
      | _ -> None
    end
  | [ "unlink"; p ] -> Some (T_unlink p)
  | [ "rmdir"; p ] -> Some (T_rmdir p)
  | [ "rename"; a; b ] -> Some (T_rename (a, b))
  | [ "link"; a; b ] -> Some (T_link (a, b))
  | [ "truncate"; p; n ] -> Option.map (fun n -> T_truncate (p, n)) (int_of_string_opt n)
  | [ "sync" ] -> Some T_sync
  | _ -> None

let save trace path =
  let oc = open_out path in
  List.iter (fun op -> output_string oc (op_to_string op ^ "\n")) trace;
  close_out oc

let load path =
  let ic = open_in path in
  let rec loop acc =
    match input_line ic with
    | exception End_of_file -> List.rev acc
    | "" -> loop acc
    | line -> begin
        match op_of_string line with
        | Some op -> loop (op :: acc)
        | None ->
            close_in_noerr ic;
            failwith ("Trace.load: bad line: " ^ line)
      end
  in
  let trace = loop [] in
  close_in ic;
  trace

(* Deterministic payload for (path, length): replay is reproducible without
   storing data in the trace. *)
let payload path n = Prng.bytes (Prng.create (Hashtbl.hash path)) n

type outcome = { ops : int; failed : int; measure : Env.measure }

let replay (env : Env.t) trace =
  let (Fs_intf.Packed ((module F), fs)) = env.Env.fs in
  let failed = ref 0 in
  let count r = match r with Ok _ -> () | Error _ -> incr failed in
  let measure =
    Env.measured env (fun () ->
        List.iter
          (fun op ->
            Blockdev.advance env.Env.dev env.Env.cpu_per_op;
            match op with
            | T_mkdir p -> count (F.mkdir fs p)
            | T_create p -> count (F.create fs p)
            | T_write_file (p, n) -> count (F.write_file fs p (payload p n))
            | T_write (p, off, n) -> count (F.write fs p ~off (payload p n))
            | T_read_file p -> count (F.read_file fs p)
            | T_read (p, off, n) -> count (F.read fs p ~off ~len:n)
            | T_unlink p -> count (F.unlink fs p)
            | T_rmdir p -> count (F.rmdir fs p)
            | T_rename (a, b) -> count (F.rename_path fs ~src:a ~dst:b)
            | T_link (a, b) -> count (F.link fs ~existing:a ~target:b)
            | T_truncate (p, n) -> count (F.truncate fs p n)
            | T_sync -> F.sync fs)
          trace)
  in
  { ops = List.length trace; failed = !failed; measure }

module Recorder (F : Cffs_vfs.Fs_intf.S) = struct
  include F

  let buffer : op list ref = ref []
  let recorded () = List.rev !buffer
  let reset () = buffer := []
  let note op = buffer := op :: !buffer

  let mkdir fs p =
    note (T_mkdir p);
    F.mkdir fs p

  let create fs p =
    note (T_create p);
    F.create fs p

  let write_file fs p data =
    note (T_write_file (p, Bytes.length data));
    F.write_file fs p data

  let write fs p ~off data =
    note (T_write (p, off, Bytes.length data));
    F.write fs p ~off data

  let read_file fs p =
    note (T_read_file p);
    F.read_file fs p

  let read fs p ~off ~len =
    note (T_read (p, off, len));
    F.read fs p ~off ~len

  let unlink fs p =
    note (T_unlink p);
    F.unlink fs p

  let rmdir fs p =
    note (T_rmdir p);
    F.rmdir fs p

  let rename_path fs ~src ~dst =
    note (T_rename (src, dst));
    F.rename_path fs ~src ~dst

  let link fs ~existing ~target =
    note (T_link (existing, target));
    F.link fs ~existing ~target

  let truncate fs p n =
    note (T_truncate (p, n));
    F.truncate fs p n

  let sync fs =
    note T_sync;
    F.sync fs
end

let synthesize ?(ops = 1000) ?(dirs = 8) ?(sizes = Sizes.paper_1996) ~seed () =
  let prng = Prng.create seed in
  let dir i = Printf.sprintf "/t%02d" (i mod dirs) in
  let live = ref [] in
  let nlive = ref 0 in
  let next = ref 0 in
  let trace = ref [] in
  let emit op = trace := op :: !trace in
  for d = 0 to dirs - 1 do
    emit (T_mkdir (dir d))
  done;
  for _ = 1 to ops do
    let r = Prng.int prng 100 in
    if r < 40 || !nlive = 0 then begin
      let p = Printf.sprintf "%s/f%06d" (dir (Prng.int prng dirs)) !next in
      incr next;
      emit (T_write_file (p, sizes.Sizes.sample prng));
      live := p :: !live;
      incr nlive
    end
    else begin
      let victim = List.nth !live (Prng.int prng !nlive) in
      if r < 70 then emit (T_read_file victim)
      else if r < 80 then emit (T_write_file (victim, sizes.Sizes.sample prng))
      else if r < 90 then begin
        emit (T_unlink victim);
        live := List.filter (fun p -> p <> victim) !live;
        decr nlive
      end
      else begin
        let p = Printf.sprintf "%s/r%06d" (dir (Prng.int prng dirs)) !next in
        incr next;
        emit (T_rename (victim, p));
        live := p :: List.filter (fun q -> q <> victim) !live
      end
    end
  done;
  emit T_sync;
  List.rev !trace
