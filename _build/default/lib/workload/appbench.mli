(** Software-development application benchmarks (paper §4.4: "preliminary
    experience with software-development applications shows performance
    improvements ranging from 10-300 percent").

    The applications matter to the file system only through the operation
    streams they generate, so each phase replays the stream an equivalent
    tool would issue over a synthetic source tree:

    - [Untar]: unpack the tree (create every directory and file);
    - [Search]: grep — read every file in tree order, cold cache;
    - [Compile]: per source file read it plus a few headers, emit an object
      file ~1.5x its size, then link all objects into one binary;
    - [Pack]: tar — read the whole tree, append to one archive file;
    - [Copy]: recursive copy of the tree within the file system;
    - [Clean]: delete the objects, the archive and the copy. *)

type app = Untar | Search | Compile | Pack | Copy | Clean

val app_name : app -> string
val apps : app list

type spec = {
  dirs : int;
  files_per_dir : int;
  sizes : Sizes.t;
  seed : int;
}

val default_spec : spec
(** 16 directories x 25 files of source-code-like sizes. *)

type result = { app : app; files : int; bytes : int; measure : Env.measure }

val run : ?spec:spec -> Env.t -> result list
