lib/workload/aging.mli: Env Sizes
