lib/workload/trace.mli: Cffs_vfs Env Sizes
