lib/workload/env.mli: Cffs_blockdev Cffs_vfs Format
