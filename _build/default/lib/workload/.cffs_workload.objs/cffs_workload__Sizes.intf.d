lib/workload/sizes.mli: Cffs_util
