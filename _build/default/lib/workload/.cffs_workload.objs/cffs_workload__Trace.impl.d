lib/workload/trace.ml: Bytes Cffs_blockdev Cffs_util Cffs_vfs Env Hashtbl List Option Printf Sizes String
