lib/workload/largefile.ml: Bytes Cffs_blockdev Cffs_vfs Env Printf
