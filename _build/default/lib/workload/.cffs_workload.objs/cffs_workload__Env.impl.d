lib/workload/env.ml: Cffs_blockdev Cffs_disk Cffs_util Cffs_vfs Format
