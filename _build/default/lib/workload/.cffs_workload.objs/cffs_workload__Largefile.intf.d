lib/workload/largefile.mli: Env
