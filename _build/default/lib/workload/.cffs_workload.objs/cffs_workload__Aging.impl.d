lib/workload/aging.ml: Bytes Cffs_util Cffs_vfs Env List Printf Sizes
