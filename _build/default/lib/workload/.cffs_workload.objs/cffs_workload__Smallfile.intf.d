lib/workload/smallfile.mli: Env
