lib/workload/sizes.ml: Cffs_util Printf
