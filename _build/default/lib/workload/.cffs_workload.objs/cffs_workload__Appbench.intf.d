lib/workload/appbench.mli: Env Sizes
