lib/workload/appbench.ml: Array Buffer Bytes Cffs_blockdev Cffs_util Cffs_vfs Env List Printf Sizes
