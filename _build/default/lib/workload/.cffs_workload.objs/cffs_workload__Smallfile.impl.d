lib/workload/smallfile.ml: Cffs_blockdev Cffs_util Cffs_vfs Env List Printf
