(** Operation traces: record, save, load and replay file-system operation
    streams.

    The paper's motivation leans on trace studies ([Ousterhout85],
    [Baker91]); this module gives the repository the same methodology:
    capture the operation stream an application makes (or synthesize one),
    persist it as a text file, and replay it against any configuration for
    an apples-to-apples comparison.

    Traces record operation shapes (paths, offsets, lengths), not payload
    bytes — like classical file-system traces.  Replay materialises
    deterministic payloads from the path and length. *)

type op =
  | T_mkdir of string
  | T_create of string
  | T_write_file of string * int  (** path, length *)
  | T_write of string * int * int  (** path, offset, length *)
  | T_read_file of string
  | T_read of string * int * int
  | T_unlink of string
  | T_rmdir of string
  | T_rename of string * string
  | T_link of string * string
  | T_truncate of string * int
  | T_sync

type t = op list

val op_to_string : op -> string
val op_of_string : string -> op option

val save : t -> string -> unit
(** One operation per line. *)

val load : string -> t
(** Raises [Failure] on an unparsable line. *)

type outcome = {
  ops : int;
  failed : int;  (** operations the file system rejected *)
  measure : Env.measure;
}

val replay : Env.t -> t -> outcome
(** Apply every operation in order, charging the environment's CPU cost per
    operation; errors are counted, not fatal (a trace may legitimately
    contain failing operations). *)

(** Wrap a file system so that every operation performed through the wrapper
    is appended to a trace buffer. *)
module Recorder (F : Cffs_vfs.Fs_intf.S) : sig
  include Cffs_vfs.Fs_intf.S with type t = F.t

  val recorded : unit -> op list
  (** Operations recorded so far (oldest first). *)

  val reset : unit -> unit
end

val synthesize :
  ?ops:int -> ?dirs:int -> ?sizes:Sizes.t -> seed:int -> unit -> t
(** A random but deterministic mixed workload (creates, reads, overwrites,
    deletes, renames) over a directory tree — raw material for replay
    experiments. *)
