(** File-size distributions.

    The paper motivates C-FFS with the observation that "79 % of all files
    on our file servers are less than 8 KB in size"; {!paper_1996} is a
    log-normal fit with exactly that property (median 2 KB, sigma chosen so
    P(size < 8 KB) = 0.79), capped at 1 MB. *)

type t = {
  name : string;
  sample : Cffs_util.Prng.t -> int;  (** a file size in bytes, >= 1 *)
}

val paper_1996 : t
(** The paper's static file-size distribution (79 % under 8 KB). *)

val fixed : int -> t
(** Every file the same size. *)

val source_code : t
(** Small C-source-like files: log-normal, median ~3 KB, capped at 64 KB. *)

val fraction_below : t -> int -> samples:int -> float
(** Monte-Carlo check of P(size < limit), for tests. *)
