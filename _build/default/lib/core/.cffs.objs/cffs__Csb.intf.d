lib/core/csb.mli:
