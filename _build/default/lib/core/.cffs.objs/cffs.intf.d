lib/core/cffs.mli: Cdir Cffs_blockdev Cffs_cache Cffs_vfs Csb
