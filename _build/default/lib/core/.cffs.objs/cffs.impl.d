lib/core/cffs.ml: Array Bytes Cdir Cffs_blockdev Cffs_cache Cffs_util Cffs_vfs Csb Ffs Hashtbl List Option String
