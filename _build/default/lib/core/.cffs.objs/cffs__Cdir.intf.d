lib/core/cdir.mli: Cffs_vfs
