lib/core/csb.ml: Cffs_util
