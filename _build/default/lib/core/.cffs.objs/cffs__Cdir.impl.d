lib/core/cdir.ml: Bytes Cffs_util Cffs_vfs String
