lib/cache/cache.ml: Bytes Cffs_blockdev Cffs_util Hashtbl List Option Printf
