lib/cache/cache.mli: Cffs_blockdev
