(** CRC-32 (IEEE 802.3 polynomial), used to checksum on-disk metadata blocks
    so fsck and the crash-injection tests can detect torn or corrupted
    sectors. *)

val digest : bytes -> int
(** CRC of a whole buffer, as a non-negative int. *)

val digest_sub : bytes -> int -> int -> int
(** [digest_sub b off len] checksums a sub-range. *)

val update : int -> bytes -> int -> int -> int
(** [update crc b off len] extends a running checksum (start from [0]). *)
