(** Running statistics and simple histograms for experiment results. *)

type t
(** A mutable accumulator of float samples (Welford online algorithm plus a
    retained sample list for percentiles). *)

val create : unit -> t

val add : t -> float -> unit
(** Record one sample. *)

val count : t -> int
val total : t -> float
val mean : t -> float
(** Mean of the samples; [0.] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two samples. *)

val stddev : t -> float
val min : t -> float
(** Smallest sample; [infinity] when empty. *)

val max : t -> float
(** Largest sample; [neg_infinity] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]]; linear interpolation between
    order statistics.  [0.] when empty. *)

val merge : t -> t -> t
(** Combine two accumulators into a fresh one. *)

(** Fixed-bucket histogram over [\[lo, hi)]. *)
module Histogram : sig
  type h

  val create : lo:float -> hi:float -> buckets:int -> h
  val add : h -> float -> unit
  (** Out-of-range samples clamp into the first/last bucket. *)

  val counts : h -> int array
  val bucket_bounds : h -> int -> float * float
  val total : h -> int
end
