(** Little-endian integer and string codecs over [bytes].

    On-disk structures (superblocks, inodes, directory entries, group
    descriptors) are serialised through this module so layout code reads as a
    sequence of typed puts/gets. *)

val get_u8 : bytes -> int -> int
val set_u8 : bytes -> int -> int -> unit
val get_u16 : bytes -> int -> int
val set_u16 : bytes -> int -> int -> unit
val get_u32 : bytes -> int -> int
(** 32-bit value as a non-negative OCaml [int]. *)

val set_u32 : bytes -> int -> int -> unit
val get_u64 : bytes -> int -> int
(** 64-bit value truncated to OCaml [int] (63 bits — ample for simulated
    disks). *)

val set_u64 : bytes -> int -> int -> unit

val get_string : bytes -> int -> int -> string
(** [get_string b off len] reads [len] raw bytes. *)

val set_string : bytes -> int -> string -> unit

val get_cstring : bytes -> int -> int -> string
(** [get_cstring b off max] reads up to [max] bytes, stopping at NUL. *)

val set_cstring : bytes -> int -> int -> string -> unit
(** [set_cstring b off max s] writes [s] NUL-padded into a [max]-byte field.
    Raises [Invalid_argument] if [s] is longer than [max]. *)

val zero : bytes -> int -> int -> unit
(** [zero b off len] clears a range. *)
