(* Doubly-linked list threaded through hashtable nodes.  The list header is a
   sentinel node: [sentinel.next] is the LRU end, [sentinel.prev] the MRU
   end. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node;
  mutable next : ('k, 'v) node;
}

type ('k, 'v) t = {
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable sentinel : ('k, 'v) node option;
}

let create ?(size_hint = 64) () = { table = Hashtbl.create size_hint; sentinel = None }

let get_sentinel t key value =
  match t.sentinel with
  | Some s -> s
  | None ->
      (* The sentinel needs dummy key/value; reuse the first inserted pair. *)
      let rec s = { key; value; prev = s; next = s } in
      t.sentinel <- Some s;
      s

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let link_mru s n =
  (* Insert [n] just before the sentinel (MRU position). *)
  n.prev <- s.prev;
  n.next <- s;
  s.prev.next <- n;
  s.prev <- n

let mem t k = Hashtbl.mem t.table k

let find t k =
  match Hashtbl.find_opt t.table k with Some n -> Some n.value | None -> None

let use t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
      (match t.sentinel with
      | Some s ->
          unlink n;
          link_mru s n
      | None -> ());
      Some n.value

let add t k v =
  match Hashtbl.find_opt t.table k with
  | Some n ->
      n.value <- v;
      (match t.sentinel with
      | Some s ->
          unlink n;
          link_mru s n
      | None -> ())
  | None ->
      let s = get_sentinel t k v in
      let rec n = { key = k; value = v; prev = n; next = n } in
      link_mru s n;
      Hashtbl.replace t.table k n

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some n ->
      unlink n;
      Hashtbl.remove t.table k

let length t = Hashtbl.length t.table

let lru t =
  match t.sentinel with
  | None -> None
  | Some s -> if s.next == s then None else Some (s.next.key, s.next.value)

let pop_lru t =
  match lru t with
  | None -> None
  | Some (k, _) as r ->
      remove t k;
      r

let iter t f =
  match t.sentinel with
  | None -> ()
  | Some s ->
      let rec loop n =
        if n != s then begin
          let next = n.next in
          f n.key n.value;
          loop next
        end
      in
      loop s.next

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun k v -> acc := f !acc k v);
  !acc

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc))
