let kib = 1024
let mib = 1024 * 1024
let gib = 1024 * 1024 * 1024
let sector_size = 512
let ms x = x /. 1000.0
let us x = x /. 1_000_000.0
let to_ms x = x *. 1000.0
let rpm_to_rev_time rpm = 60.0 /. rpm
