(** Generic LRU index with O(1) touch/insert/remove.

    Used by the buffer cache for its recency order.  The structure maps keys
    to values and maintains least-recently-used order; capacity enforcement is
    left to the caller (via {!lru} + {!remove}) because eviction of dirty
    buffers needs caller-side logic. *)

type ('k, 'v) t

val create : ?size_hint:int -> unit -> ('k, 'v) t

val mem : ('k, 'v) t -> 'k -> bool
val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup without touching recency. *)

val use : ('k, 'v) t -> 'k -> 'v option
(** Lookup and mark most-recently-used. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace, marking most-recently-used. *)

val remove : ('k, 'v) t -> 'k -> unit
val length : ('k, 'v) t -> int

val lru : ('k, 'v) t -> ('k * 'v) option
(** Least-recently-used binding, or [None] when empty. *)

val pop_lru : ('k, 'v) t -> ('k * 'v) option
(** Remove and return the least-recently-used binding. *)

val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit
(** Iterate from least- to most-recently-used. *)

val fold : ('k, 'v) t -> init:'a -> f:('a -> 'k -> 'v -> 'a) -> 'a

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Bindings from least- to most-recently-used. *)
