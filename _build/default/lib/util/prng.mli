(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    experiment is exactly reproducible from its seed.  The generator is
    SplitMix64: fast, well distributed, and trivially seedable. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator duplicating [t]'s current state. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator from [t],
    advancing [t].  Use to give sub-components their own streams. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.  Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential distribution with the given
    mean. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Sample a log-normal distribution with the given parameters of the
    underlying normal. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] random bytes. *)
