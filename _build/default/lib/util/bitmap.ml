type t = { bits : Bytes.t; length : int; mutable set_count : int }

let create n =
  assert (n >= 0);
  { bits = Bytes.make ((n + 7) / 8) '\000'; length = n; set_count = 0 }

let length t = t.length

let check t i = if i < 0 || i >= t.length then invalid_arg "Bitmap: index"

let get t i =
  check t i;
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i;
  let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  if byte land mask = 0 then begin
    Bytes.set t.bits (i lsr 3) (Char.chr (byte lor mask));
    t.set_count <- t.set_count + 1
  end

let clear t i =
  check t i;
  let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  if byte land mask <> 0 then begin
    Bytes.set t.bits (i lsr 3) (Char.chr (byte land lnot mask));
    t.set_count <- t.set_count - 1
  end

let set_range t off len =
  for i = off to off + len - 1 do
    set t i
  done

let clear_range t off len =
  for i = off to off + len - 1 do
    clear t i
  done

let count_set t = t.set_count
let count_clear t = t.length - t.set_count

let find_clear_in t ~lo ~hi =
  let hi = Stdlib.min hi t.length in
  let rec loop i = if i >= hi then None else if get t i then loop (i + 1) else Some i in
  loop (Stdlib.max 0 lo)

let find_clear t ~hint =
  if t.set_count = t.length then None
  else begin
    let hint = if t.length = 0 then 0 else hint mod t.length in
    match find_clear_in t ~lo:hint ~hi:t.length with
    | Some _ as r -> r
    | None -> find_clear_in t ~lo:0 ~hi:hint
  end

let is_clear_run t off len =
  if off < 0 || off + len > t.length then false
  else begin
    let rec loop i = i >= off + len || ((not (get t i)) && loop (i + 1)) in
    loop off
  end

let find_clear_run t ~hint ~len =
  if len <= 0 || len > t.length then None
  else begin
    let hint = if t.length = 0 then 0 else hint mod t.length in
    (* Scan from [hint] to end, then from 0 to [hint]; skip ahead past the
       last set bit found inside a failed candidate run. *)
    let scan lo hi =
      let rec loop i =
        if i + len > hi then None
        else begin
          let rec first_set j =
            if j >= i + len then None
            else if get t j then Some j
            else first_set (j + 1)
          in
          match first_set i with
          | None -> Some i
          | Some j -> loop (j + 1)
        end
      in
      loop lo
    in
    match scan hint t.length with
    | Some _ as r -> r
    | None -> scan 0 (Stdlib.min (hint + len - 1) t.length)
  end

let copy t =
  { bits = Bytes.copy t.bits; length = t.length; set_count = t.set_count }

let to_bytes t = Bytes.copy t.bits

let of_bytes n b =
  let t = create n in
  let nbytes = Stdlib.min (Bytes.length b) (Bytes.length t.bits) in
  Bytes.blit b 0 t.bits 0 nbytes;
  (* Clear any stray bits past [n] and recount. *)
  let count = ref 0 in
  for i = 0 to n - 1 do
    if Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0 then
      incr count
  done;
  let last = Bytes.length t.bits in
  if last > 0 && n land 7 <> 0 then begin
    let keep = (1 lsl (n land 7)) - 1 in
    Bytes.set t.bits (last - 1)
      (Char.chr (Char.code (Bytes.get t.bits (last - 1)) land keep))
  end;
  { t with set_count = !count }

let equal a b = a.length = b.length && Bytes.equal a.bits b.bits

let iter_set t f =
  for i = 0 to t.length - 1 do
    if get t i then f i
  done
