let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc b off len =
  let table = Lazy.force table in
  let c = ref (crc lxor 0xffffffff) in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code (Bytes.get b i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let digest_sub b off len = update 0 b off len
let digest b = digest_sub b 0 (Bytes.length b)
