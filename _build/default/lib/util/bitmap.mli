(** Bit sets used for on-disk block and inode allocation maps.

    Bits are addressed [0 .. length - 1]; a set bit means "allocated". *)

type t

val create : int -> t
(** [create n] is an all-clear bitmap of [n] bits. *)

val length : t -> int
val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit
val set_range : t -> int -> int -> unit
(** [set_range t off len] sets [len] bits starting at [off]. *)

val clear_range : t -> int -> int -> unit
val count_set : t -> int
(** Population count (cached, O(1) amortised). *)

val count_clear : t -> int

val find_clear : t -> hint:int -> int option
(** First clear bit scanning circularly from [hint]. *)

val find_clear_run : t -> hint:int -> len:int -> int option
(** [find_clear_run t ~hint ~len] finds the start of a run of [len]
    consecutive clear bits, scanning circularly from [hint].  Runs do not wrap
    around the end of the bitmap. *)

val find_clear_in : t -> lo:int -> hi:int -> int option
(** First clear bit in [\[lo, hi)], or [None]. *)

val is_clear_run : t -> int -> int -> bool
(** [is_clear_run t off len] is [true] iff all [len] bits from [off] are
    clear. *)

val copy : t -> t
val to_bytes : t -> bytes
(** Serialise (little-endian bit order within each byte). *)

val of_bytes : int -> bytes -> t
(** [of_bytes n b] deserialises an [n]-bit bitmap from [b]. *)

val equal : t -> t -> bool

val iter_set : t -> (int -> unit) -> unit
(** Apply a function to every set bit index, ascending. *)
