lib/util/codec.mli:
