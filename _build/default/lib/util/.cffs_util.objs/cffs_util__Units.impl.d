lib/util/units.ml:
