lib/util/stats.mli:
