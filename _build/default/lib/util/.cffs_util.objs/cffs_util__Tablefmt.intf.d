lib/util/tablefmt.mli:
