lib/util/codec.ml: Bytes Char Int32 Int64 String
