lib/util/bitmap.mli:
