lib/util/lru.mli:
