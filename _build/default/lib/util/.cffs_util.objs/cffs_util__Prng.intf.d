lib/util/prng.mli:
