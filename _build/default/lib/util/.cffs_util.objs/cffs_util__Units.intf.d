lib/util/units.mli:
