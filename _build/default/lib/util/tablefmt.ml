type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string option;
  header : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?title columns =
  { title; header = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.header then
    invalid_arg "Tablefmt.add_row: wrong arity";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all_cell_rows =
    t.header :: List.filter_map (function Cells c -> Some c | Separator -> None) rows
  in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  let note_row cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter note_row all_cell_rows;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else begin
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
    end
  in
  let emit_cells aligns cells =
    let parts =
      List.mapi (fun i (a, c) -> pad a widths.(i) c) (List.combine aligns cells)
    in
    Buffer.add_string buf (String.concat "  " parts);
    Buffer.add_char buf '\n'
  in
  let rule () =
    let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
    Buffer.add_string buf (String.make total '-');
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  emit_cells (List.map (fun _ -> Left) t.header) t.header;
  rule ();
  List.iter
    (function Cells c -> emit_cells t.aligns c | Separator -> rule ())
    rows;
  Buffer.contents buf

let print t = print_string (render t)

let fmt_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let fmt_bytes n =
  let f = float_of_int n in
  if n < 1024 then Printf.sprintf "%d B" n
  else if n < 1024 * 1024 then Printf.sprintf "%.1f KB" (f /. 1024.0)
  else if n < 1024 * 1024 * 1024 then Printf.sprintf "%.1f MB" (f /. 1048576.0)
  else Printf.sprintf "%.2f GB" (f /. 1073741824.0)

let fmt_ms secs = Printf.sprintf "%.2f ms" (secs *. 1000.0)
