(** Unit constants and conversions shared across the simulator. *)

val kib : int
val mib : int
val gib : int

val sector_size : int
(** 512 bytes, the unit the disk model works in. *)

val ms : float -> float
(** [ms x] converts milliseconds to seconds. *)

val us : float -> float
(** [us x] converts microseconds to seconds. *)

val to_ms : float -> float
(** Seconds to milliseconds. *)

val rpm_to_rev_time : float -> float
(** Full-revolution time in seconds for a spindle speed in RPM. *)
