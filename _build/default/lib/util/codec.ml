let get_u8 b off = Char.code (Bytes.get b off)
let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))
let get_u16 b off = Bytes.get_uint16_le b off
let set_u16 b off v = Bytes.set_uint16_le b off (v land 0xffff)

let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff
let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let get_u64 b off = Int64.to_int (Bytes.get_int64_le b off)
let set_u64 b off v = Bytes.set_int64_le b off (Int64.of_int v)

let get_string b off len = Bytes.sub_string b off len
let set_string b off s = Bytes.blit_string s 0 b off (String.length s)

let get_cstring b off max =
  let rec len i = if i >= max || Bytes.get b (off + i) = '\000' then i else len (i + 1) in
  Bytes.sub_string b off (len 0)

let set_cstring b off max s =
  let n = String.length s in
  if n > max then invalid_arg "Codec.set_cstring: string too long";
  Bytes.blit_string s 0 b off n;
  Bytes.fill b (off + n) (max - n) '\000'

let zero b off len = Bytes.fill b off len '\000'
