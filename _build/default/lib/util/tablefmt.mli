(** Aligned plain-text tables for experiment output.

    The benchmark harness prints every reproduced paper table/figure as one of
    these. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given header cells. *)

val add_row : t -> string list -> unit
(** Row cells must match the column count. *)

val add_separator : t -> unit
(** Horizontal rule between row groups. *)

val render : t -> string
(** The full table, trailing newline included. *)

val print : t -> unit
(** [render] to stdout. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point float for table cells (default 2 decimals). *)

val fmt_bytes : int -> string
(** Human bytes: ["4.0 KB"], ["1.2 MB"], ... *)

val fmt_ms : float -> string
(** Milliseconds with unit, from a value in seconds. *)
