type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable total : float;
  mutable mn : float;
  mutable mx : float;
  mutable samples : float list;
  mutable sorted : float array option; (* memoised sort of [samples] *)
}

let create () =
  {
    n = 0;
    mean = 0.0;
    m2 = 0.0;
    total = 0.0;
    mn = infinity;
    mx = neg_infinity;
    samples = [];
    sorted = None;
  }

let add t x =
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x;
  t.samples <- x :: t.samples;
  t.sorted <- None

let count t = t.n
let total t = t.total
let mean t = if t.n = 0 then 0.0 else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.mn
let max t = t.mx

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
      let a = Array.of_list t.samples in
      Array.sort compare a;
      t.sorted <- Some a;
      a

let percentile t p =
  let a = sorted t in
  let n = Array.length a in
  if n = 0 then 0.0
  else if n = 1 then a.(0)
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let merge a b =
  let t = create () in
  List.iter (add t) a.samples;
  List.iter (add t) b.samples;
  t

module Histogram = struct
  type h = { lo : float; hi : float; counts : int array; mutable total : int }

  let create ~lo ~hi ~buckets =
    assert (buckets > 0 && hi > lo);
    { lo; hi; counts = Array.make buckets 0; total = 0 }

  let add h x =
    let nb = Array.length h.counts in
    let idx =
      int_of_float ((x -. h.lo) /. (h.hi -. h.lo) *. float_of_int nb)
    in
    let idx = Stdlib.max 0 (Stdlib.min (nb - 1) idx) in
    h.counts.(idx) <- h.counts.(idx) + 1;
    h.total <- h.total + 1

  let counts h = Array.copy h.counts

  let bucket_bounds h i =
    let nb = float_of_int (Array.length h.counts) in
    let w = (h.hi -. h.lo) /. nb in
    (h.lo +. (float_of_int i *. w), h.lo +. (float_of_int (i + 1) *. w))

  let total h = h.total
end
