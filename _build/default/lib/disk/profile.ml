type zone = { first_cyl : int; last_cyl : int; sectors_per_track : int }

type t = {
  name : string;
  year : int;
  cylinders : int;
  heads : int;
  zones : zone list;
  rpm : float;
  single_cyl_seek_ms : float;
  avg_seek_ms : float;
  max_seek_ms : float;
  head_switch_ms : float;
  cylinder_switch_ms : float;
  controller_overhead_ms : float;
  bus_mb_per_s : float;
  cache_kib : int;
  cache_segments : int;
  assumed : string list;
}

(* Build a geometry of [n] equal-width zones whose sectors-per-track fall
   linearly from [outer] to [inner]. *)
let linear_zones ~cylinders ~n ~outer ~inner =
  let width = cylinders / n in
  List.init n (fun i ->
      let first_cyl = i * width in
      let last_cyl = if i = n - 1 then cylinders - 1 else ((i + 1) * width) - 1 in
      let spt = outer + ((inner - outer) * i / (n - 1)) in
      { first_cyl; last_cyl; sectors_per_track = spt })

let seagate_st31200 =
  {
    name = "Seagate ST31200N";
    year = 1993;
    cylinders = 2700;
    heads = 9;
    zones = linear_zones ~cylinders:2700 ~n:5 ~outer:108 ~inner:61;
    rpm = 5411.0;
    single_cyl_seek_ms = 1.7;
    avg_seek_ms = 10.0;
    max_seek_ms = 22.0;
    head_switch_ms = 1.0;
    cylinder_switch_ms = 1.7;
    controller_overhead_ms = 1.0;
    bus_mb_per_s = 10.0;
    cache_kib = 256;
    (* The Hawk-era cache is a simple read-ahead buffer: one stream.  The
       paper's measured FFS results imply exactly this — interleaving
       metadata and data reads defeated the drive's prefetch. *)
    cache_segments = 1;
    assumed = [ "zone layout"; "switch times"; "controller overhead" ];
  }

let hp_c3653 =
  {
    name = "HP C3653";
    year = 1996;
    cylinders = 2900;
    heads = 9;
    zones = linear_zones ~cylinders:2900 ~n:5 ~outer:168 ~inner:120;
    rpm = 5400.0;
    (* Paper Table 1: single-cylinder seek "< 1 ms", avg 8.7 ms, max 16.5 ms. *)
    single_cyl_seek_ms = 0.9;
    avg_seek_ms = 8.7;
    max_seek_ms = 16.5;
    head_switch_ms = 0.8;
    cylinder_switch_ms = 1.0;
    controller_overhead_ms = 0.5;
    bus_mb_per_s = 20.0;
    cache_kib = 512;
    cache_segments = 8;
    assumed = [ "geometry"; "rpm"; "switch times"; "cache size" ];
  }

let seagate_barracuda4lp =
  {
    name = "Seagate Barracuda 4LP";
    year = 1996;
    cylinders = 3600;
    heads = 8;
    zones = linear_zones ~cylinders:3600 ~n:6 ~outer:168 ~inner:126;
    (* Paper Table 1: single-cylinder 0.6 ms, avg 8.0 ms, max 19.0 ms. *)
    rpm = 7200.0;
    single_cyl_seek_ms = 0.6;
    avg_seek_ms = 8.0;
    max_seek_ms = 19.0;
    head_switch_ms = 0.7;
    cylinder_switch_ms = 0.9;
    controller_overhead_ms = 0.5;
    bus_mb_per_s = 20.0;
    cache_kib = 512;
    cache_segments = 8;
    assumed = [ "geometry"; "switch times"; "cache size" ];
  }

let quantum_atlas_ii =
  {
    name = "Quantum Atlas II";
    year = 1996;
    cylinders = 3800;
    heads = 8;
    zones = linear_zones ~cylinders:3800 ~n:6 ~outer:166 ~inner:124;
    (* Paper Table 1: single-cylinder 1.0 ms, avg 7.9 ms, max 18.0 ms. *)
    rpm = 7200.0;
    single_cyl_seek_ms = 1.0;
    avg_seek_ms = 7.9;
    max_seek_ms = 18.0;
    head_switch_ms = 0.7;
    cylinder_switch_ms = 1.0;
    controller_overhead_ms = 0.5;
    bus_mb_per_s = 20.0;
    cache_kib = 1024;
    cache_segments = 8;
    assumed = [ "geometry"; "switch times" ];
  }

let hp_c2247 =
  {
    name = "HP C2247";
    year = 1992;
    cylinders = 2051;
    heads = 13;
    (* The paper notes the C2247 had half as many sectors per track as the
       C3653 and ~33 % higher average access time. *)
    zones = linear_zones ~cylinders:2051 ~n:4 ~outer:84 ~inner:60;
    rpm = 5400.0;
    single_cyl_seek_ms = 2.0;
    avg_seek_ms = 12.6;
    max_seek_ms = 25.0;
    head_switch_ms = 1.2;
    cylinder_switch_ms = 2.0;
    controller_overhead_ms = 1.2;
    bus_mb_per_s = 10.0;
    cache_kib = 128;
    cache_segments = 2;
    assumed = [ "geometry"; "seek curve"; "switch times" ];
  }

let all =
  [ seagate_st31200; hp_c3653; seagate_barracuda4lp; quantum_atlas_ii; hp_c2247 ]

let by_name name =
  List.find_opt (fun p -> String.lowercase_ascii p.name = String.lowercase_ascii name) all

let truncated p ~cylinders =
  if cylinders <= 0 || cylinders > p.cylinders then invalid_arg "Profile.truncated";
  let zones =
    List.filter_map
      (fun z ->
        if z.first_cyl >= cylinders then None
        else Some { z with last_cyl = min z.last_cyl (cylinders - 1) })
      p.zones
  in
  { p with cylinders; zones; name = Printf.sprintf "%s (%d cyl)" p.name cylinders }

let zone_tracks p z = (z.last_cyl - z.first_cyl + 1) * p.heads

let total_sectors p =
  List.fold_left (fun acc z -> acc + (zone_tracks p z * z.sectors_per_track)) 0 p.zones

let capacity_bytes p = total_sectors p * Cffs_util.Units.sector_size

let avg_sectors_per_track p =
  let tracks = p.cylinders * p.heads in
  float_of_int (total_sectors p) /. float_of_int tracks

let media_mb_per_s p =
  let bytes_per_rev = avg_sectors_per_track p *. float_of_int Cffs_util.Units.sector_size in
  bytes_per_rev /. Cffs_util.Units.rpm_to_rev_time p.rpm /. 1.0e6
