(** The disk mechanism simulator.

    A drive services one request at a time (the paper's testbed issues
    synchronous SCSI commands) and advances a simulated clock by the service
    time: controller overhead + seek + rotational latency + media transfer,
    with head/cylinder switch costs for multi-track transfers.  Rotational
    position is derived from the clock, so think-time between requests
    changes which sector is under the head — exactly the effect that makes
    adjacent placement pay off. *)

type t

val create : Profile.t -> t
val profile : t -> Profile.t
val geometry : t -> Geometry.t

val now : t -> float
(** Current simulated time in seconds. *)

val advance : t -> float -> unit
(** Let non-disk (CPU) time pass. *)

val current_cyl : t -> int

val service : t -> Request.t -> float
(** Service a request, advancing the clock; returns the service time. *)

val stats : t -> Request.Stats.s
(** Live counters (mutated in place; copy before diffing). *)

val seek_time : t -> int -> float
(** Expose the fitted seek curve: seconds for a distance in cylinders. *)

val total_sectors : t -> int

val flush_cache : t -> unit
(** Drop the on-board cache (used when simulating a remount/cold cache). *)
