(** Logical-block to physical-position mapping for a zoned drive.

    LBAs are 512-byte sectors numbered from the outermost cylinder inward;
    within a cylinder, surfaces are filled in order; within a track, sectors
    are sequential.  (No serpentine layout; track and cylinder skew are
    modelled in {!Drive} as switch times rather than explicit offsets.) *)

type t

type pos = {
  cyl : int;
  head : int;
  sector : int;  (** index within the track *)
  spt : int;  (** sectors per track at this cylinder *)
}

val of_profile : Profile.t -> t
val total_sectors : t -> int
val cylinders : t -> int

val sectors_per_track : t -> int -> int
(** [sectors_per_track t cyl]. *)

val locate : t -> int -> pos
(** [locate t lba].  Raises [Invalid_argument] for out-of-range LBAs. *)

val cyl_of_lba : t -> int -> int
(** Cheap cylinder-only lookup used by schedulers. *)

val first_lba_of_cyl : t -> int -> int
