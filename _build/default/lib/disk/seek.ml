type t = { a : float; b : float; c : float; cylinders : int }

(* Fit t(d) = a*sqrt(d-1) + b*(d-1) + c through
   (1, single), (max/3, avg), (max, full).  Two linear equations in a, b. *)
let of_profile (p : Profile.t) =
  let ms = Cffs_util.Units.ms in
  let c = ms p.single_cyl_seek_ms in
  let dmax = float_of_int (p.cylinders - 1) in
  let d_avg = dmax /. 3.0 in
  let x1 = sqrt (d_avg -. 1.0) and z1 = d_avg -. 1.0 in
  let x2 = sqrt (dmax -. 1.0) and z2 = dmax -. 1.0 in
  let y1 = ms p.avg_seek_ms -. c in
  let y2 = ms p.max_seek_ms -. c in
  (* Solve a*x1 + b*z1 = y1 ; a*x2 + b*z2 = y2. *)
  let det = (x1 *. z2) -. (x2 *. z1) in
  let a, b =
    if Float.abs det < 1e-12 then (y2 /. x2, 0.0)
    else begin
      let a = ((y1 *. z2) -. (y2 *. z1)) /. det in
      let b = ((x1 *. y2) -. (x2 *. y1)) /. det in
      if a < 0.0 || b < 0.0 then
        (* Degenerate profile: fall back to pure square-root curve through the
           full-stroke point. *)
        (y2 /. x2, 0.0)
      else (a, b)
    end
  in
  { a; b; c; cylinders = p.cylinders }

let time t d =
  if d <= 0 then 0.0
  else begin
    let df = float_of_int d -. 1.0 in
    (t.a *. sqrt df) +. (t.b *. df) +. t.c
  end

let average t ~samples =
  let prng = Cffs_util.Prng.create 0x5eed in
  let acc = ref 0.0 in
  for _ = 1 to samples do
    let c1 = Cffs_util.Prng.int prng t.cylinders in
    let c2 = Cffs_util.Prng.int prng t.cylinders in
    acc := !acc +. time t (abs (c1 - c2))
  done;
  !acc /. float_of_int samples
