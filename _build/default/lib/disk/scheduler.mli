(** Request scheduling policies.

    The paper's disk driver "supports scatter/gather I/O and uses a C-LOOK
    scheduling algorithm [Worthington94]".  C-LOOK is the default; FCFS and
    SSTF are provided for the scheduling ablation. *)

type policy = Fcfs | Clook | Sstf

val policy_name : policy -> string
val policy_of_string : string -> policy option

val order :
  policy -> Geometry.t -> current_cyl:int -> Request.t list -> Request.t list
(** [order policy geom ~current_cyl reqs] returns the service order for a
    batch of queued requests:
    - [Fcfs]: arrival order;
    - [Clook]: ascending LBA starting from the first request at or beyond the
      current cylinder, wrapping once to the lowest;
    - [Sstf]: repeatedly pick the request with the smallest cylinder distance
      from the (simulated) current position. *)
