(** Seek-time model.

    Three-point curve in the style of disk simulators such as DiskSim:
    [t(d) = a·sqrt(d-1) + b·(d-1) + c] for a seek of [d] cylinders, fitted so
    that the single-cylinder, average (taken at one third of a full-stroke,
    the mean distance of uniformly random seeks) and full-stroke times match
    the drive profile.  The square-root term captures the
    acceleration-dominated short-seek regime the paper highlights
    ("seeking a single cylinder generally costs a full millisecond, and this
    cost rises quickly for slightly longer distances" [Worthington95]). *)

type t

val of_profile : Profile.t -> t

val time : t -> int -> float
(** [time t d] is the seek time in seconds for a distance of [d] cylinders.
    [time t 0 = 0.]. *)

val average : t -> samples:int -> float
(** Monte-Carlo check of the model's average seek time over uniformly random
    cylinder pairs (seconds); used by tests to validate the fit. *)
