(** On-board (drive-level) segmented read cache with sequential prefetch.

    Mirrors the behaviour the paper relies on ("the disk prefetches
    sequential disk data into its on-board cache") with a physically honest
    model: after a read, the drive keeps reading ahead {e at media rate}
    while the mechanism is otherwise idle, so the prefetched window grows
    with elapsed wall-clock time and is destroyed when the head repositions
    for an unrelated request.  A read that falls entirely inside a cached
    window is a hit and costs no repositioning. *)

type t

val create : segments:int -> segment_sectors:int -> t

val settle : t -> elapsed:float -> sectors_per_sec:float -> max_lba:int -> unit
(** Let [elapsed] seconds of idle/bus time pass: every open segment's
    prefetch frontier advances at the media rate, up to the segment
    capacity. *)

val hit : t -> lba:int -> sectors:int -> bool
(** Containment check; touches the segment's recency on hit.  Call {!settle}
    first. *)

val streaming : t -> lba:int -> sectors:int -> int option
(** [streaming t ~lba ~sectors] checks whether the request joins an active
    prefetch stream: [lba] falls inside an {e open} segment but the request
    extends past its frontier.  Returns [Some cached] where [cached] is the
    number of leading sectors already buffered; the segment is extended to
    cover the request (the head keeps streaming — no seek, no rotational
    loss).  Returns [None] otherwise. *)

val close_open : t -> unit
(** The head repositioned: all prefetch activity stops (cached contents
    remain valid). *)

val install : t -> lba:int -> sectors:int -> unit
(** Record a media read of [lba, lba+sectors); the new segment is open, i.e.
    prefetch continues from its end as time passes.  Evicts the
    least-recently-used segment if full. *)

val invalidate : t -> lba:int -> sectors:int -> unit
(** Drop any segment overlapping a written range. *)

val clear : t -> unit
