type policy = Fcfs | Clook | Sstf

let policy_name = function Fcfs -> "FCFS" | Clook -> "C-LOOK" | Sstf -> "SSTF"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "fcfs" -> Some Fcfs
  | "clook" | "c-look" -> Some Clook
  | "sstf" -> Some Sstf
  | _ -> None

let order policy geom ~current_cyl reqs =
  match policy with
  | Fcfs -> reqs
  | Clook ->
      let sorted =
        List.stable_sort (fun (a : Request.t) b -> compare a.lba b.lba) reqs
      in
      let ahead, behind =
        List.partition
          (fun (r : Request.t) -> Geometry.cyl_of_lba geom r.lba >= current_cyl)
          sorted
      in
      ahead @ behind
  | Sstf ->
      let remaining = ref reqs in
      let cyl = ref current_cyl in
      let out = ref [] in
      while !remaining <> [] do
        let best =
          List.fold_left
            (fun acc (r : Request.t) ->
              let d = abs (Geometry.cyl_of_lba geom r.lba - !cyl) in
              match acc with
              | Some (_, bd) when bd <= d -> acc
              | _ -> Some (r, d))
            None !remaining
        in
        match best with
        | None -> ()
        | Some (r, _) ->
            out := r :: !out;
            cyl := Geometry.cyl_of_lba geom r.lba;
            remaining := List.filter (fun x -> x != r) !remaining
      done;
      List.rev !out
