type seg = {
  start : int;
  mutable stop : int; (* exclusive *)
  mutable frontier_open : bool; (* prefetch still running past [stop] *)
  cap : int; (* maximum [stop] value: start + segment capacity *)
}

type t = {
  max_segments : int;
  segment_sectors : int;
  mutable segments : seg list; (* most-recently-used first *)
}

let create ~segments ~segment_sectors =
  assert (segments > 0 && segment_sectors > 0);
  { max_segments = segments; segment_sectors; segments = [] }

let settle t ~elapsed ~sectors_per_sec ~max_lba =
  if elapsed > 0.0 then begin
    let gain = int_of_float (elapsed *. sectors_per_sec) in
    List.iter
      (fun s ->
        if s.frontier_open then begin
          s.stop <- min (min s.cap max_lba) (s.stop + gain);
          if s.stop >= min s.cap max_lba then s.frontier_open <- false
        end)
      t.segments
  end

let hit t ~lba ~sectors =
  let rec split acc = function
    | [] -> false
    | seg :: rest ->
        if lba >= seg.start && lba + sectors <= seg.stop then begin
          t.segments <- seg :: List.rev_append acc rest;
          true
        end
        else split (seg :: acc) rest
  in
  split [] t.segments

let streaming t ~lba ~sectors =
  let rec split acc = function
    | [] -> None
    | seg :: rest ->
        if seg.frontier_open && lba >= seg.start && lba <= seg.stop
           && lba + sectors > seg.stop
        then begin
          let cached = seg.stop - lba in
          (* The stream continues through the request; the segment behaves as
             a ring buffer, discarding its oldest data if necessary. *)
          let seg =
            {
              seg with
              stop = lba + sectors;
              start = max seg.start (lba + sectors - t.segment_sectors);
              cap = max seg.cap (lba + sectors + t.segment_sectors);
            }
          in
          t.segments <- seg :: List.rev_append acc rest;
          Some cached
        end
        else split (seg :: acc) rest
  in
  split [] t.segments

let close_open t = List.iter (fun s -> s.frontier_open <- false) t.segments

let install t ~lba ~sectors =
  let seg =
    {
      start = lba;
      stop = lba + sectors;
      frontier_open = true;
      (* Read-ahead may run a full segment past the request's end. *)
      cap = lba + sectors + t.segment_sectors;
    }
  in
  let kept =
    List.filter (fun s -> not (s.start < seg.stop && seg.start < s.stop)) t.segments
  in
  let kept =
    if List.length kept >= t.max_segments then
      List.filteri (fun i _ -> i < t.max_segments - 1) kept
    else kept
  in
  t.segments <- seg :: kept

let invalidate t ~lba ~sectors =
  let stop = lba + sectors in
  t.segments <-
    List.filter (fun s -> not (s.start < stop && lba < s.stop)) t.segments

let clear t = t.segments <- []
