lib/disk/geometry.mli: Profile
