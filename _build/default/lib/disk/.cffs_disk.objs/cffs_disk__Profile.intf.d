lib/disk/profile.mli:
