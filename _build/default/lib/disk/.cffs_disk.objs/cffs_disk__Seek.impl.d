lib/disk/seek.ml: Cffs_util Float Profile
