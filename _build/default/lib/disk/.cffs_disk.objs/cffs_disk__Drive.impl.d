lib/disk/drive.ml: Cffs_util Dcache Float Geometry Profile Request Seek
