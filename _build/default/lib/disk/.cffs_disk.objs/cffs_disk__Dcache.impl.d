lib/disk/dcache.ml: List
