lib/disk/request.mli: Format
