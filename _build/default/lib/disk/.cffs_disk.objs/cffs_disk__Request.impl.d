lib/disk/request.ml: Cffs_util Format
