lib/disk/drive.mli: Geometry Profile Request
