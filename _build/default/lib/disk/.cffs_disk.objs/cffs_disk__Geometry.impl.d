lib/disk/geometry.ml: Array List Profile
