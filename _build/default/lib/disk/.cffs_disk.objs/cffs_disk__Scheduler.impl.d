lib/disk/scheduler.ml: Geometry List Request String
