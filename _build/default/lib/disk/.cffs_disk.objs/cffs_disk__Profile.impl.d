lib/disk/profile.ml: Cffs_util List Printf String
