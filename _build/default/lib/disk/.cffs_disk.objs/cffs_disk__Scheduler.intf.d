lib/disk/scheduler.mli: Geometry Request
