lib/disk/seek.mli: Profile
