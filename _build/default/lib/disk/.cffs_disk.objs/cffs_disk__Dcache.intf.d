lib/disk/dcache.mli:
