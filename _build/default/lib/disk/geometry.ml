type zone_info = {
  first_cyl : int;
  last_cyl : int;
  spt : int;
  first_lba : int;  (** LBA of the zone's first sector *)
}

type t = { zones : zone_info array; heads : int; total : int; cylinders : int }

type pos = { cyl : int; head : int; sector : int; spt : int }

let of_profile (p : Profile.t) =
  let next_lba = ref 0 in
  let zones =
    List.map
      (fun (z : Profile.zone) ->
        let info =
          {
            first_cyl = z.first_cyl;
            last_cyl = z.last_cyl;
            spt = z.sectors_per_track;
            first_lba = !next_lba;
          }
        in
        let ncyl = z.last_cyl - z.first_cyl + 1 in
        next_lba := !next_lba + (ncyl * p.heads * z.sectors_per_track);
        info)
      p.zones
    |> Array.of_list
  in
  { zones; heads = p.heads; total = !next_lba; cylinders = p.cylinders }

let total_sectors t = t.total
let cylinders t = t.cylinders

let zone_of_cyl t cyl =
  let rec find i =
    if i >= Array.length t.zones then invalid_arg "Geometry: cylinder out of range"
    else begin
      let z = t.zones.(i) in
      if cyl >= z.first_cyl && cyl <= z.last_cyl then z else find (i + 1)
    end
  in
  find 0

let sectors_per_track t cyl = (zone_of_cyl t cyl).spt

let zone_of_lba t lba =
  if lba < 0 || lba >= t.total then invalid_arg "Geometry: LBA out of range";
  let rec find i =
    let z = t.zones.(i) in
    if i = Array.length t.zones - 1 || lba < t.zones.(i + 1).first_lba then z
    else find (i + 1)
  in
  find 0

let locate t lba =
  let z = zone_of_lba t lba in
  let rel = lba - z.first_lba in
  let per_cyl = t.heads * z.spt in
  let cyl = z.first_cyl + (rel / per_cyl) in
  let in_cyl = rel mod per_cyl in
  { cyl; head = in_cyl / z.spt; sector = in_cyl mod z.spt; spt = z.spt }

let cyl_of_lba t lba =
  let z = zone_of_lba t lba in
  z.first_cyl + ((lba - z.first_lba) / (t.heads * z.spt))

let first_lba_of_cyl t cyl =
  let z = zone_of_cyl t cyl in
  z.first_lba + ((cyl - z.first_cyl) * t.heads * z.spt)
