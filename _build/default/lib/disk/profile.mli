(** Disk drive profiles.

    A profile captures the mechanical and interface parameters the simulator
    needs.  The five built-in profiles correspond to the drives the paper
    mentions: the three state-of-the-art (1996) drives of Table 1, the older
    HP C2247 used for the bandwidth-trend argument, and the Seagate ST31200
    of the experimental setup (Table 2).  Values quoted in the paper are used
    verbatim; the remainder are period-plausible vendor figures and are
    flagged in [assumed]. *)

type zone = {
  first_cyl : int;  (** first cylinder of the zone (inclusive) *)
  last_cyl : int;  (** last cylinder of the zone (inclusive) *)
  sectors_per_track : int;
}

type t = {
  name : string;
  year : int;
  cylinders : int;
  heads : int;  (** data surfaces, i.e. tracks per cylinder *)
  zones : zone list;  (** ordered, covering [0 .. cylinders-1] *)
  rpm : float;
  single_cyl_seek_ms : float;
  avg_seek_ms : float;
  max_seek_ms : float;
  head_switch_ms : float;
  cylinder_switch_ms : float;
  controller_overhead_ms : float;  (** per-request command processing *)
  bus_mb_per_s : float;  (** interface burst rate, for on-board cache hits *)
  cache_kib : int;  (** on-board cache size *)
  cache_segments : int;  (** read segments in the on-board cache *)
  assumed : string list;  (** fields not published; values are plausible *)
}

val seagate_st31200 : t
(** The experimental-setup drive (paper Table 2). *)

val hp_c3653 : t
(** Table 1, column 1. *)

val seagate_barracuda4lp : t
(** Table 1, column 2. *)

val quantum_atlas_ii : t
(** Table 1, column 3. *)

val hp_c2247 : t
(** The older drive cited for the bandwidth trend (half the sectors per track
    of the C3653, ~33 % higher average access time). *)

val all : t list
val by_name : string -> t option

val truncated : t -> cylinders:int -> t
(** A copy of the profile restricted to its first [cylinders] cylinders —
    a smaller disk with the same mechanics, used by experiments that need to
    fill a meaningful fraction of the device (aging). *)

val total_sectors : t -> int
val capacity_bytes : t -> int
val avg_sectors_per_track : t -> float
val media_mb_per_s : t -> float
(** Average media transfer rate implied by geometry and spindle speed. *)
