lib/fsck/fsck_ffs.ml: Cffs_cache Cffs_util Cffs_vfs Ffs Hashtbl List Printf Report
