lib/fsck/report.ml: Cffs_vfs Format List Printf
