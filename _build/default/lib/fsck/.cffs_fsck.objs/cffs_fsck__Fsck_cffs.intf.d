lib/fsck/fsck_cffs.mli: Cffs Report
