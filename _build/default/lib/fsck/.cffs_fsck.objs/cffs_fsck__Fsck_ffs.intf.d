lib/fsck/fsck_ffs.mli: Ffs Report
