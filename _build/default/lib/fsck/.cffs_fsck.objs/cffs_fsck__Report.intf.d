lib/fsck/report.mli: Cffs_vfs Format
