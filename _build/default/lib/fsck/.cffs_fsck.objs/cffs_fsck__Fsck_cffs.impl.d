lib/fsck/fsck_cffs.ml: Bytes Cffs Cffs_cache Cffs_util Cffs_vfs Ffs Hashtbl List Option Printf Report
