(** Off-line checker/repairer for C-FFS (paper §3.1, "File system
    recovery").

    There are no static inode tables: embedded inodes are found by walking
    the directory hierarchy from the root (whose inode lives in the
    superblock), and the external inode file is then swept for orphaned
    slots.  Repair removes dangling entries, clears corrupt chunks,
    reattaches orphaned external files under [/lost+found], rebuilds the
    per-group block bitmaps and fixes link counts. *)

val check : Cffs.t -> Report.t
val repair : Cffs.t -> Report.t
