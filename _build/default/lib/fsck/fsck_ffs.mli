(** Off-line checker/repairer for the FFS baseline, in the spirit of
    [McKusick94]'s fsck: walks the directory hierarchy from the root,
    cross-checks it against the static inode tables and both bitmaps, and
    can repair what it finds (remove dangling entries, reattach orphan files
    under [/lost+found], clear orphan directories, rebuild bitmaps, fix link
    counts). *)

val check : Ffs.t -> Report.t
(** Read-only examination. *)

val repair : Ffs.t -> Report.t
(** Fix everything fixable; the returned report lists the problems that were
    found ([repaired]) plus any that remain. *)
