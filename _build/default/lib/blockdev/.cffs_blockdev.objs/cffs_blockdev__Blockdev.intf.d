lib/blockdev/blockdev.mli: Cffs_disk Cffs_util
