lib/blockdev/blockdev.ml: Bytes Cffs_disk Cffs_util Drive Hashtbl List Printf Request Scheduler
