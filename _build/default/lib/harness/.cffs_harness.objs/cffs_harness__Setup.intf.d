lib/harness/setup.mli: Cffs Cffs_cache Cffs_disk Cffs_workload Ffs
