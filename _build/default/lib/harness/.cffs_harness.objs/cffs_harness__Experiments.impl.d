lib/harness/experiments.ml: Bytes Cffs Cffs_blockdev Cffs_cache Cffs_disk Cffs_util Cffs_vfs Cffs_workload List Printf Setup
