lib/harness/experiments.mli: Cffs_cache Cffs_util Cffs_workload
