lib/harness/setup.ml: Cffs Cffs_blockdev Cffs_cache Cffs_disk Cffs_vfs Cffs_workload Ffs
