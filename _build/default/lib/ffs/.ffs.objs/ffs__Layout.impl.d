lib/ffs/layout.ml: Cffs_util Cffs_vfs
