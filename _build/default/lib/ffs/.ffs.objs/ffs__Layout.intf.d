lib/ffs/layout.mli:
