lib/ffs/ffs.mli: Cffs_blockdev Cffs_cache Cffs_vfs Dirent Layout
