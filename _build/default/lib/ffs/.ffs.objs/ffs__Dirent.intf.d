lib/ffs/dirent.mli:
