lib/ffs/ffs.ml: Array Bytes Cffs_blockdev Cffs_cache Cffs_util Cffs_vfs Dirent Layout List String
