lib/ffs/dirent.ml: Bytes Cffs_util String
