(** FFS directory-block format.

    A directory block is a packed sequence of variable-length entries:
    {v
      u32 ino | u16 reclen | u16 namelen | name (padded to 4 bytes)
    v}
    [reclen] always reaches the next entry (or the end of the block); an
    entry with [ino = 0] is free space.  Deletion coalesces an entry into its
    predecessor, exactly as in FFS — which is why repeated create/delete in a
    directory keeps rewriting the same blocks. *)

val header_bytes : int
val entry_bytes : string -> int
(** Space a live entry for this name needs (header + padded name). *)

val init_block : bytes -> unit
(** Make the whole block one free entry. *)

val iter : bytes -> (off:int -> ino:int -> string -> unit) -> unit
(** Visit live entries. *)

val fold : bytes -> init:'a -> f:('a -> ino:int -> string -> 'a) -> 'a

val find : bytes -> string -> (int * int) option
(** [find block name] is [Some (offset, ino)]. *)

val insert : bytes -> string -> int -> bool
(** [insert block name ino] places a new entry if the block has room
    (a sufficient free entry or slack behind a live one); [false] if not.
    The caller must ensure [name] is not already present. *)

val remove : bytes -> string -> int option
(** Remove an entry, returning its inode number. *)

val set_ino : bytes -> int -> int -> unit
(** [set_ino block off ino] overwrites the inode field of the entry at
    [off] (used by rename). *)

val live_count : bytes -> int
val free_bytes : bytes -> int
(** Total reusable space (free entries + slack). *)
