(** Lift an inode-level file system to the path-based interface. *)

module Make (F : Fs_intf.LOW) : Fs_intf.S with type t = F.t
