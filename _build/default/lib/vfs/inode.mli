(** On-disk inode: the 128-byte record both file systems use.

    Layout (little-endian), 128 bytes:
    {v
      off  0  u16  kind        (0 free, 1 regular, 2 directory)
      off  2  u16  nlink
      off  4  u64  size        (bytes)
      off 12  u32  mtime       (simulated seconds)
      off 16  u32  generation
      off 20  u32  flags
      off 24  u32  direct[12]  (block numbers; 0 = hole)
      off 72  u32  indirect
      off 76  u32  dindirect
      off 80  u32  spare[4]   (file-system specific; C-FFS keeps its
                               active group-frame hints here)
      off 96  ..   reserved
    v} *)

type kind = Free | Regular | Directory

type t = {
  mutable kind : kind;
  mutable nlink : int;
  mutable size : int;
  mutable mtime : int;
  mutable generation : int;
  mutable flags : int;
  direct : int array;  (** always {!n_direct} entries *)
  mutable indirect : int;
  mutable dindirect : int;
  spare : int array;  (** always {!n_spare} entries *)
}

val n_direct : int
(** 12, as in FFS. *)

val n_spare : int
(** 4. *)

val size_bytes : int
(** 128. *)

val empty : unit -> t
(** A fresh free inode. *)

val mk : kind -> t
(** A fresh allocated inode of the given kind with [nlink = 1]
    ([2] for directories, counting ["."]). *)

val kind_code : kind -> int
val kind_of_code : int -> kind option

val encode : t -> bytes -> int -> unit
(** [encode ino b off] serialises into [b] at [off]. *)

val decode : bytes -> int -> t
(** [decode b off] deserialises; unknown kind codes decode as [Free]. *)

val copy : t -> t

val max_addressable_blocks : ptrs_per_block:int -> int
(** How many data blocks the direct + indirect + double-indirect map covers
    when an indirect block holds [ptrs_per_block] pointers. *)

val pp : Format.formatter -> t -> unit
