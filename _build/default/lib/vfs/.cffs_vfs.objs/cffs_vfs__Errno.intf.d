lib/vfs/errno.mli: Format Stdlib
