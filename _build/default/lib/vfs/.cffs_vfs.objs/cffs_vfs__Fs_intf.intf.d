lib/vfs/fs_intf.mli: Errno Inode
