lib/vfs/bmap.ml: Array Bytes Cffs_blockdev Cffs_cache Cffs_util Errno Inode
