lib/vfs/bmap.mli: Cffs_cache Errno Inode
