lib/vfs/pathfs.ml: Bytes Errno Fs_intf Inode List Path Result String
