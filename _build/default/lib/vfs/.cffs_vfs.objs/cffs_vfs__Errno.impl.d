lib/vfs/errno.ml: Format Stdlib
