lib/vfs/inode.mli: Format
