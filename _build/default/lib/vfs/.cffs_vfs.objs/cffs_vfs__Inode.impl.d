lib/vfs/inode.ml: Array Cffs_util Format
