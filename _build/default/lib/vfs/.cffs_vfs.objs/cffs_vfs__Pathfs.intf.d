lib/vfs/pathfs.mli: Fs_intf
