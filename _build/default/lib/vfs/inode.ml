module Codec = Cffs_util.Codec

type kind = Free | Regular | Directory

type t = {
  mutable kind : kind;
  mutable nlink : int;
  mutable size : int;
  mutable mtime : int;
  mutable generation : int;
  mutable flags : int;
  direct : int array;
  mutable indirect : int;
  mutable dindirect : int;
  spare : int array;
}

let n_direct = 12
let n_spare = 4
let size_bytes = 128

let empty () =
  {
    kind = Free;
    nlink = 0;
    size = 0;
    mtime = 0;
    generation = 0;
    flags = 0;
    direct = Array.make n_direct 0;
    indirect = 0;
    dindirect = 0;
    spare = Array.make n_spare 0;
  }

let mk kind =
  let t = empty () in
  t.kind <- kind;
  t.nlink <- (match kind with Directory -> 2 | Regular | Free -> 1);
  t

let kind_code = function Free -> 0 | Regular -> 1 | Directory -> 2

let kind_of_code = function
  | 0 -> Some Free
  | 1 -> Some Regular
  | 2 -> Some Directory
  | _ -> None

let encode t b off =
  Codec.set_u16 b off (kind_code t.kind);
  Codec.set_u16 b (off + 2) t.nlink;
  Codec.set_u64 b (off + 4) t.size;
  Codec.set_u32 b (off + 12) t.mtime;
  Codec.set_u32 b (off + 16) t.generation;
  Codec.set_u32 b (off + 20) t.flags;
  for i = 0 to n_direct - 1 do
    Codec.set_u32 b (off + 24 + (4 * i)) t.direct.(i)
  done;
  Codec.set_u32 b (off + 72) t.indirect;
  Codec.set_u32 b (off + 76) t.dindirect;
  for i = 0 to n_spare - 1 do
    Codec.set_u32 b (off + 80 + (4 * i)) t.spare.(i)
  done;
  Codec.zero b (off + 96) (size_bytes - 96)

let decode b off =
  let kind =
    match kind_of_code (Codec.get_u16 b off) with Some k -> k | None -> Free
  in
  {
    kind;
    nlink = Codec.get_u16 b (off + 2);
    size = Codec.get_u64 b (off + 4);
    mtime = Codec.get_u32 b (off + 12);
    generation = Codec.get_u32 b (off + 16);
    flags = Codec.get_u32 b (off + 20);
    direct = Array.init n_direct (fun i -> Codec.get_u32 b (off + 24 + (4 * i)));
    indirect = Codec.get_u32 b (off + 72);
    dindirect = Codec.get_u32 b (off + 76);
    spare = Array.init n_spare (fun i -> Codec.get_u32 b (off + 80 + (4 * i)));
  }

let copy t = { t with direct = Array.copy t.direct; spare = Array.copy t.spare }

let max_addressable_blocks ~ptrs_per_block =
  n_direct + ptrs_per_block + (ptrs_per_block * ptrs_per_block)

let pp ppf t =
  Format.fprintf ppf "{%s nlink=%d size=%d}"
    (match t.kind with Free -> "free" | Regular -> "reg" | Directory -> "dir")
    t.nlink t.size
