(* The paper's motivating workload: software development.  Runs the
   application benchmark suite (untar, search, compile, pack, copy, clean)
   on the conventional configuration and on full C-FFS, and prints the
   improvement — the paper reports 10-300%.

   Run with: dune exec examples/software_dev.exe *)

module Setup = Cffs_harness.Setup
module Appbench = Cffs_workload.Appbench
module Env = Cffs_workload.Env
module Tablefmt = Cffs_util.Tablefmt

let () =
  let spec = { Appbench.default_spec with Appbench.dirs = 8; files_per_dir = 16 } in
  Printf.printf
    "Software-development applications over a %d-file source tree\n\
     (simulated Seagate ST31200, synchronous metadata writes)\n\n%!"
    (spec.Appbench.dirs * spec.Appbench.files_per_dir);
  let run kind =
    let inst = Setup.instantiate (Setup.standard kind) in
    Appbench.run ~spec inst.Setup.env
  in
  let base = run (Setup.Cffs_fs Cffs.config_ffs_like) in
  let cffs = run (Setup.Cffs_fs Cffs.config_default) in
  let t =
    Tablefmt.create
      [
        ("Application", Tablefmt.Left);
        ("conventional (s)", Tablefmt.Right);
        ("C-FFS (s)", Tablefmt.Right);
        ("requests", Tablefmt.Right);
        ("improvement", Tablefmt.Right);
      ]
  in
  List.iter2
    (fun (b : Appbench.result) (c : Appbench.result) ->
      Tablefmt.add_row t
        [
          Appbench.app_name b.Appbench.app;
          Printf.sprintf "%.2f" b.Appbench.measure.Env.seconds;
          Printf.sprintf "%.2f" c.Appbench.measure.Env.seconds;
          Printf.sprintf "%d vs %d" b.Appbench.measure.Env.requests
            c.Appbench.measure.Env.requests;
          Printf.sprintf "%+.0f%%"
            ((b.Appbench.measure.Env.seconds /. c.Appbench.measure.Env.seconds -. 1.0)
            *. 100.0);
        ])
    base cffs;
  Tablefmt.print t;
  print_newline ();
  let total rs =
    List.fold_left (fun acc (r : Appbench.result) -> acc +. r.Appbench.measure.Env.seconds)
      0.0 rs
  in
  Printf.printf "Whole suite: %.1f s -> %.1f s (%.0f%% faster)\n" (total base)
    (total cffs)
    ((total base /. total cffs -. 1.0) *. 100.0)
