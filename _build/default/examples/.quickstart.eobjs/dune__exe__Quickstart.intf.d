examples/quickstart.mli:
