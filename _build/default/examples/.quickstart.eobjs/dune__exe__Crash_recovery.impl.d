examples/crash_recovery.ml: Bytes Cffs Cffs_blockdev Cffs_cache Cffs_fsck Cffs_util Cffs_vfs Format List Printf
