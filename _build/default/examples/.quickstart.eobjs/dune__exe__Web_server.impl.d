examples/web_server.ml: Cffs Cffs_blockdev Cffs_disk Cffs_harness Cffs_util Cffs_vfs Cffs_workload List Printf
