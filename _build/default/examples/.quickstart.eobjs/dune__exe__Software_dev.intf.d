examples/software_dev.mli:
