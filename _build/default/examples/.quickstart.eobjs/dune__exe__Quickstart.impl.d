examples/quickstart.ml: Bytes Cffs Cffs_blockdev Cffs_disk Cffs_util Cffs_vfs Char Printf String
