examples/software_dev.ml: Cffs Cffs_harness Cffs_util Cffs_workload List Printf
