(* Quickstart: create a C-FFS file system on a simulated 1990s disk, use the
   path API, and watch what the two techniques do to disk traffic.

   Run with: dune exec examples/quickstart.exe *)

module Blockdev = Cffs_blockdev.Blockdev
module Drive = Cffs_disk.Drive
module Profile = Cffs_disk.Profile
module Request = Cffs_disk.Request
module Errno = Cffs_vfs.Errno

let ok what = Errno.get_ok what

let () =
  (* A simulated Seagate ST31200 (the paper's testbed drive) under a 4 KB
     block device. *)
  let drive = Drive.create Profile.seagate_st31200 in
  let dev = Blockdev.of_drive drive ~block_size:4096 in
  let fs = Cffs.format dev in
  Printf.printf "Formatted %s on %s (%s)\n\n"
    (Cffs.config_label (Cffs.config fs))
    Profile.seagate_st31200.Profile.name
    (Cffs_util.Tablefmt.fmt_bytes (Profile.capacity_bytes Profile.seagate_st31200));

  (* Ordinary file-system calls. *)
  ok "mkdir" (Cffs.mkdir_p fs "/home/user/notes");
  ok "write" (Cffs.write_file fs "/home/user/notes/todo.txt"
                (Bytes.of_string "- reproduce the paper\n- profit\n"));
  ok "write" (Cffs.write_file fs "/home/user/notes/done.txt"
                (Bytes.of_string "- build a disk simulator\n"));
  ok "link" (Cffs.link fs ~existing:"/home/user/notes/todo.txt" ~target:"/home/user/todo");
  Printf.printf "/home/user/notes contains: %s\n"
    (String.concat ", " (ok "ls" (Cffs.list_dir fs "/home/user/notes")));
  Printf.printf "todo.txt says:\n%s\n"
    (Bytes.to_string (ok "read" (Cffs.read_file fs "/home/user/notes/todo.txt")));

  (* Now the point of the paper: create a directory of small files, then
     read it back cold and count disk requests. *)
  ok "mkdir" (Cffs.mkdir fs "/mail");
  for i = 0 to 63 do
    ok "write"
      (Cffs.write_file fs
         (Printf.sprintf "/mail/msg%03d" i)
         (Bytes.make 1500 (Char.chr (65 + (i mod 26)))))
  done;
  Cffs.sync fs;
  Cffs.remount fs (* drop every cache: cold start *);

  let before = Request.Stats.copy (Blockdev.stats dev) in
  let t0 = Blockdev.now dev in
  for i = 0 to 63 do
    ignore (ok "read" (Cffs.read_file fs (Printf.sprintf "/mail/msg%03d" i)))
  done;
  let d = Request.Stats.diff (Blockdev.stats dev) before in
  Printf.printf "Cold read of 64 small files: %d disk requests, %.1f ms simulated\n"
    (Request.Stats.requests d)
    ((Blockdev.now dev -. t0) *. 1000.0);
  Printf.printf "  (embedded inodes: the directory blocks carry the inodes;\n";
  Printf.printf "   explicit grouping: whole 64 KB frames travel per request)\n\n";

  let u = Cffs.usage fs in
  Printf.printf "Usage: %d/%d blocks free; grouping quality %.2f\n"
    u.Cffs_vfs.Fs_intf.free_blocks u.Cffs_vfs.Fs_intf.total_blocks
    (Cffs.grouped_fraction fs)
