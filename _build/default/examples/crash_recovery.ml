(* Crash recovery: the embedded-inode integrity argument in action.

   With synchronous metadata, C-FFS writes a file's name and inode in one
   sector-atomic directory-block write, so there is no window in which a
   crash leaves a name pointing at an uninitialised inode.  This example
   runs a workload, cuts the power mid-flush, and lets fsck put the file
   system back together.

   Run with: dune exec examples/crash_recovery.exe *)

module Blockdev = Cffs_blockdev.Blockdev
module Cache = Cffs_cache.Cache
module Errno = Cffs_vfs.Errno
module Report = Cffs_fsck.Report
module Prng = Cffs_util.Prng

let ok what = Errno.get_ok what

let () =
  let dev = Blockdev.memory ~block_size:4096 ~nblocks:16384 in
  let fs = Cffs.format ~policy:Cache.Sync_metadata dev in
  let prng = Prng.create 42 in

  (* A burst of activity: create a mail spool, delete some of it. *)
  ok "mkdir" (Cffs.mkdir fs "/spool");
  for i = 0 to 199 do
    ok "write"
      (Cffs.write_file fs
         (Printf.sprintf "/spool/msg%04d" i)
         (Prng.bytes prng (500 + Prng.int prng 4000)))
  done;
  for i = 0 to 49 do
    ok "rm" (Cffs.unlink fs (Printf.sprintf "/spool/msg%04d" (i * 3)))
  done;
  Printf.printf "Workload done: %d dirty blocks queued behind synchronous metadata\n"
    (Cache.dirty_count (Cffs.cache fs));

  (* Power failure mid-flush: only part of the delayed data reaches disk. *)
  let written = Cache.flush_limit (Cffs.cache fs) 40 in
  Cache.crash (Cffs.cache fs);
  Printf.printf "CRASH after %d of the delayed blocks were written!\n\n" written;

  (* Reboot: mount whatever is on the device and run fsck. *)
  match Cffs.mount dev with
  | None -> failwith "superblock unreadable - this should never happen"
  | Some fs ->
      let before = Cffs_fsck.Fsck_cffs.check fs in
      Printf.printf "fsck (read-only): %s\n\n" (Format.asprintf "%a" Report.pp before);
      let after = Cffs_fsck.Fsck_cffs.repair fs in
      Printf.printf "fsck --repair:   %s\n\n" (Format.asprintf "%a" Report.pp after);
      assert (Report.clean after);
      (* Every surviving name resolves and reads without error; names
         created with synchronous metadata are all still present. *)
      let names = ok "ls" (Cffs.list_dir fs "/spool") in
      let intact = ref 0 in
      List.iter
        (fun n ->
          match Cffs.read_file fs ("/spool/" ^ n) with
          | Ok _ -> incr intact
          | Error e -> failwith ("unreadable survivor: " ^ Errno.to_string e))
        names;
      Printf.printf "%d names survived, all readable (data written before the crash\n" !intact;
      Printf.printf "is intact; data still in the cache at the crash reads as zeros).\n";
      (* And the file system is fully usable again. *)
      ok "write" (Cffs.write_file fs "/spool/after-reboot" (Bytes.of_string "back up"));
      Printf.printf "\nPost-recovery write OK - the file system is back in service.\n\n";

      (* Scenario 2: media corruption.  A directory block dies, taking its
         embedded inodes with it; fsck notices the fallout (bitmap and link
         counts no longer add up) and repairs. *)
      Cffs.sync fs;
      let victim =
        let dinode = ok "root" (Cffs.read_inode fs Cffs.Csb.root_ino) in
        match Cffs_vfs.Bmap.read (Cffs.cache fs) dinode 0 with
        | Ok (Some p) -> p
        | _ -> failwith "root directory has no block"
      in
      Blockdev.corrupt_block dev victim prng;
      Cache.remount (Cffs.cache fs);
      Printf.printf "Media corruption injected into directory block %d.\n" victim;
      let report = Cffs_fsck.Fsck_cffs.repair fs in
      Printf.printf "fsck --repair:   %s\n" (Format.asprintf "%a" Report.pp report)
