(* Grouping by name space for a web-document tree.

   The paper's discussion section suggests grouping the files that make up a
   single hypertext document [Kaashoek96].  C-FFS approximates this through
   the name space: a page's assets live in the page's directory, so its data
   blocks share group frames and a cold page-load becomes one or two disk
   requests instead of a dozen.

   This example builds a small site (one directory per page: the HTML plus
   its images/CSS), then measures cold page-load latency on the conventional
   configuration and on C-FFS.

   Run with: dune exec examples/web_server.exe *)

module Setup = Cffs_harness.Setup
module Blockdev = Cffs_blockdev.Blockdev
module Request = Cffs_disk.Request
module Env = Cffs_workload.Env
module Errno = Cffs_vfs.Errno
module Fs_intf = Cffs_vfs.Fs_intf
module Prng = Cffs_util.Prng

let ok what = Errno.get_ok what
let pages = 40
let assets_per_page = 7

let asset_name p a = Printf.sprintf "/site/page%02d/asset%d.png" p a
let html_name p = Printf.sprintf "/site/page%02d/index.html" p

let build_site (Fs_intf.Packed ((module F), fs)) =
  let prng = Prng.create 0x5EED in
  ok "mkdir" (F.mkdir fs "/site");
  for p = 0 to pages - 1 do
    ok "mkdir" (F.mkdir fs (Printf.sprintf "/site/page%02d" p));
    ok "html" (F.write_file fs (html_name p) (Prng.bytes prng (2048 + Prng.int prng 2048)));
    for a = 0 to assets_per_page - 1 do
      ok "asset"
        (F.write_file fs (asset_name p a) (Prng.bytes prng (1024 + Prng.int prng 3072)))
    done
  done;
  F.sync fs

(* A page load reads the HTML, then every referenced asset. *)
let load_page (Fs_intf.Packed ((module F), fs)) env p =
  Blockdev.advance env.Env.dev env.Env.cpu_per_op;
  ignore (ok "html" (F.read_file fs (html_name p)));
  for a = 0 to assets_per_page - 1 do
    Blockdev.advance env.Env.dev env.Env.cpu_per_op;
    ignore (ok "asset" (F.read_file fs (asset_name p a)))
  done

let measure kind =
  let inst = Setup.instantiate (Setup.standard kind) in
  let env = inst.Setup.env in
  build_site env.Env.fs;
  let (Fs_intf.Packed ((module F), fs)) = env.Env.fs in
  F.remount fs (* every page load is cold: a busy server's cache misses *);
  let stats = Blockdev.stats env.Env.dev in
  let latencies = Cffs_util.Stats.create () in
  let before_reqs = ref (Request.Stats.requests (Request.Stats.copy stats)) in
  for p = 0 to pages - 1 do
    let t0 = Blockdev.now env.Env.dev in
    load_page env.Env.fs env p;
    Cffs_util.Stats.add latencies ((Blockdev.now env.Env.dev -. t0) *. 1000.0)
  done;
  let reqs = Request.Stats.requests (Request.Stats.copy stats) - !before_reqs in
  (latencies, float_of_int reqs /. float_of_int pages)

let () =
  Printf.printf
    "Cold page loads (%d pages x %d assets) on a simulated ST31200\n\n%!" pages
    (1 + assets_per_page);
  List.iter
    (fun kind ->
      let lat, reqs_per_page = measure kind in
      Printf.printf "%-14s  mean %6.1f ms   p95 %6.1f ms   %4.1f disk requests/page\n%!"
        (Setup.fs_kind_label kind)
        (Cffs_util.Stats.mean lat)
        (Cffs_util.Stats.percentile lat 95.0)
        reqs_per_page)
    [ Setup.Cffs_fs Cffs.config_ffs_like; Setup.Cffs_fs Cffs.config_default ];
  Printf.printf
    "\nCo-location turns a page's dozen small reads into one or two frame\n\
     reads: exactly the [Kaashoek96] server-operating-system argument.\n"
