(* Tests for the disk simulator: profiles, seek model, geometry, on-board
   cache behaviour, request service times and schedulers. *)

module Profile = Cffs_disk.Profile
module Seek = Cffs_disk.Seek
module Geometry = Cffs_disk.Geometry
module Drive = Cffs_disk.Drive
module Dcache = Cffs_disk.Dcache
module Request = Cffs_disk.Request
module Scheduler = Cffs_disk.Scheduler
module Prng = Cffs_util.Prng

let check = Alcotest.check
let qtest ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let st31200 = Profile.seagate_st31200

(* ------------------------------------------------------------------ *)
(* Profiles *)

let test_profile_capacities () =
  List.iter
    (fun (p : Profile.t) ->
      let cap = Profile.capacity_bytes p in
      (* Every profile is a 1990s drive: between 500 MB and 3 GB. *)
      if cap < 500_000_000 || cap > 3_000_000_000 then
        Alcotest.failf "%s capacity %d implausible" p.Profile.name cap)
    Profile.all

let test_profile_media_rates () =
  List.iter
    (fun (p : Profile.t) ->
      let r = Profile.media_mb_per_s p in
      if r < 1.0 || r > 20.0 then
        Alcotest.failf "%s media rate %.1f implausible" p.Profile.name r)
    Profile.all

let test_profile_lookup () =
  check Alcotest.bool "by_name finds" true (Profile.by_name "hp c3653" <> None);
  check Alcotest.bool "by_name misses" true (Profile.by_name "nope" = None)

let test_profile_c2247_slower () =
  (* The paper's bandwidth-trend example: the C2247 has roughly half the
     C3653's sectors per track. *)
  let old_spt = Profile.avg_sectors_per_track Profile.hp_c2247 in
  let new_spt = Profile.avg_sectors_per_track Profile.hp_c3653 in
  check Alcotest.bool "half the sectors" true (old_spt < 0.6 *. new_spt)

let test_profile_truncated () =
  let small = Profile.truncated st31200 ~cylinders:270 in
  check Alcotest.int "cylinders" 270 small.Profile.cylinders;
  let ratio =
    float_of_int (Profile.capacity_bytes small)
    /. float_of_int (Profile.capacity_bytes st31200)
  in
  check Alcotest.bool "~10% capacity" true (ratio > 0.08 && ratio < 0.16);
  check Alcotest.bool "rejects bad" true
    (try ignore (Profile.truncated st31200 ~cylinders:0); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Seek model *)

let test_seek_endpoints () =
  let s = Seek.of_profile st31200 in
  check (Alcotest.float 1e-9) "zero distance" 0.0 (Seek.time s 0);
  check (Alcotest.float 1e-6) "single cylinder"
    (st31200.Profile.single_cyl_seek_ms /. 1000.0)
    (Seek.time s 1);
  check (Alcotest.float 1e-4) "full stroke"
    (st31200.Profile.max_seek_ms /. 1000.0)
    (Seek.time s (st31200.Profile.cylinders - 1))

let test_seek_monotonic () =
  List.iter
    (fun (p : Profile.t) ->
      let s = Seek.of_profile p in
      let prev = ref 0.0 in
      for d = 1 to p.Profile.cylinders - 1 do
        let t = Seek.time s d in
        if t < !prev -. 1e-12 then Alcotest.failf "seek not monotonic at %d" d;
        prev := t
      done)
    Profile.all

let test_seek_average_fit () =
  List.iter
    (fun (p : Profile.t) ->
      let s = Seek.of_profile p in
      let avg = Seek.average s ~samples:30000 *. 1000.0 in
      (* The fitted model's random-pair average should be within 20% of the
         spec's average seek. *)
      let rel = Float.abs (avg -. p.Profile.avg_seek_ms) /. p.Profile.avg_seek_ms in
      if rel > 0.2 then
        Alcotest.failf "%s avg seek %.2f vs spec %.2f" p.Profile.name avg
          p.Profile.avg_seek_ms)
    Profile.all

let test_seek_short_seeks_expensive () =
  (* "Seeking a single cylinder generally costs a full millisecond": short
     seeks are far more expensive per cylinder than long ones. *)
  let s = Seek.of_profile st31200 in
  let per_cyl_short = Seek.time s 4 /. 4.0 in
  let per_cyl_long = Seek.time s 1000 /. 1000.0 in
  check Alcotest.bool "sqrt regime" true (per_cyl_short > 10.0 *. per_cyl_long)

(* ------------------------------------------------------------------ *)
(* Geometry *)

let test_geometry_total () =
  let g = Geometry.of_profile st31200 in
  check Alcotest.int "matches profile" (Profile.total_sectors st31200)
    (Geometry.total_sectors g)

let test_geometry_first_last () =
  let g = Geometry.of_profile st31200 in
  let p0 = Geometry.locate g 0 in
  check Alcotest.int "first cyl" 0 p0.Geometry.cyl;
  check Alcotest.int "first head" 0 p0.Geometry.head;
  check Alcotest.int "first sector" 0 p0.Geometry.sector;
  let plast = Geometry.locate g (Geometry.total_sectors g - 1) in
  check Alcotest.int "last cyl" (st31200.Profile.cylinders - 1) plast.Geometry.cyl

let test_geometry_out_of_range () =
  let g = Geometry.of_profile st31200 in
  check Alcotest.bool "negative rejected" true
    (try ignore (Geometry.locate g (-1)); false with Invalid_argument _ -> true);
  check Alcotest.bool "too large rejected" true
    (try ignore (Geometry.locate g (Geometry.total_sectors g)); false
     with Invalid_argument _ -> true)

let qcheck_geometry_roundtrip =
  qtest "geometry: locate is consistent with first_lba_of_cyl"
    QCheck.(int_bound (Profile.total_sectors st31200 - 1))
    (fun lba ->
      let g = Geometry.of_profile st31200 in
      let pos = Geometry.locate g lba in
      let base = Geometry.first_lba_of_cyl g pos.Geometry.cyl in
      let spt = Geometry.sectors_per_track g pos.Geometry.cyl in
      base + (pos.Geometry.head * spt) + pos.Geometry.sector = lba
      && Geometry.cyl_of_lba g lba = pos.Geometry.cyl)

let qcheck_geometry_monotone_cyl =
  qtest "geometry: cylinders increase with LBA"
    QCheck.(pair (int_bound (Profile.total_sectors st31200 - 1))
              (int_bound (Profile.total_sectors st31200 - 1)))
    (fun (a, b) ->
      let g = Geometry.of_profile st31200 in
      let a, b = (min a b, max a b) in
      Geometry.cyl_of_lba g a <= Geometry.cyl_of_lba g b)

(* ------------------------------------------------------------------ *)
(* Request stats *)

let test_request_basics () =
  let r = Request.read ~lba:100 ~sectors:8 in
  check Alcotest.int "last lba" 107 (Request.last_lba r);
  let w = Request.write ~lba:104 ~sectors:8 in
  check Alcotest.bool "overlap" true (Request.overlaps r w);
  let far = Request.read ~lba:200 ~sectors:8 in
  check Alcotest.bool "no overlap" false (Request.overlaps r far)

let test_stats_diff () =
  let d = Drive.create st31200 in
  let before = Request.Stats.copy (Drive.stats d) in
  ignore (Drive.service d (Request.read ~lba:0 ~sectors:8));
  ignore (Drive.service d (Request.write ~lba:1000 ~sectors:16));
  let diff = Request.Stats.diff (Drive.stats d) before in
  check Alcotest.int "reads" 1 diff.Request.Stats.reads;
  check Alcotest.int "writes" 1 diff.Request.Stats.writes;
  check Alcotest.int "sectors" 24 (Request.Stats.sectors diff);
  check Alcotest.int "requests" 2 (Request.Stats.requests diff);
  check Alcotest.bool "busy time positive" true (diff.Request.Stats.busy_time > 0.0)

(* ------------------------------------------------------------------ *)
(* Dcache *)

let test_dcache_hit_miss () =
  let c = Dcache.create ~segments:2 ~segment_sectors:64 in
  check Alcotest.bool "cold miss" false (Dcache.hit c ~lba:100 ~sectors:8);
  Dcache.install c ~lba:100 ~sectors:8;
  check Alcotest.bool "hit after install" true (Dcache.hit c ~lba:100 ~sectors:8);
  check Alcotest.bool "partial before" false (Dcache.hit c ~lba:96 ~sectors:8)

let test_dcache_settle_extends () =
  let c = Dcache.create ~segments:2 ~segment_sectors:64 in
  Dcache.install c ~lba:100 ~sectors:8;
  check Alcotest.bool "beyond frontier" false (Dcache.hit c ~lba:108 ~sectors:8);
  Dcache.settle c ~elapsed:1.0 ~sectors_per_sec:16.0 ~max_lba:10000;
  check Alcotest.bool "prefetched" true (Dcache.hit c ~lba:108 ~sectors:8)

let test_dcache_close_open_stops () =
  let c = Dcache.create ~segments:2 ~segment_sectors:64 in
  Dcache.install c ~lba:100 ~sectors:8;
  Dcache.close_open c;
  Dcache.settle c ~elapsed:10.0 ~sectors_per_sec:100.0 ~max_lba:10000;
  check Alcotest.bool "no growth after close" false (Dcache.hit c ~lba:108 ~sectors:8)

let test_dcache_invalidate () =
  let c = Dcache.create ~segments:2 ~segment_sectors:64 in
  Dcache.install c ~lba:100 ~sectors:8;
  Dcache.invalidate c ~lba:104 ~sectors:2;
  check Alcotest.bool "invalidated" false (Dcache.hit c ~lba:100 ~sectors:8)

let test_dcache_streaming_join () =
  let c = Dcache.create ~segments:2 ~segment_sectors:64 in
  Dcache.install c ~lba:100 ~sectors:8;
  (* A request at the frontier joins the stream. *)
  check (Alcotest.option Alcotest.int) "join with 0 cached" (Some 0)
    (Dcache.streaming c ~lba:108 ~sectors:8);
  (* The segment was extended; the same range is now a plain hit. *)
  check Alcotest.bool "now cached" true (Dcache.hit c ~lba:108 ~sectors:8)

let test_dcache_lru_eviction () =
  let c = Dcache.create ~segments:2 ~segment_sectors:64 in
  Dcache.install c ~lba:0 ~sectors:8;
  Dcache.install c ~lba:1000 ~sectors:8;
  Dcache.install c ~lba:2000 ~sectors:8;
  (* Two segments only: the oldest (0) is gone. *)
  check Alcotest.bool "oldest evicted" false (Dcache.hit c ~lba:0 ~sectors:8);
  check Alcotest.bool "newest present" true (Dcache.hit c ~lba:2000 ~sectors:8)

(* ------------------------------------------------------------------ *)
(* Drive service times *)

let rev_time = Cffs_util.Units.rpm_to_rev_time st31200.Profile.rpm

let test_drive_service_bounds () =
  let d = Drive.create st31200 in
  let prng = Prng.create 5 in
  for _ = 1 to 300 do
    Drive.advance d (Prng.float prng 0.02);
    let lba = Prng.int prng (Drive.total_sectors d - 8) in
    let t = Drive.service d (Request.read ~lba ~sectors:8) in
    (* A 4 KB access can't beat the bus and can't exceed
       overhead + max seek + full rotation + generous transfer. *)
    if t < 0.0004 || t > 0.040 then Alcotest.failf "service time %.4f out of bounds" t
  done

let test_drive_sequential_media_rate () =
  let d = Drive.create st31200 in
  let t0 = Drive.now d in
  let pos = ref 1000 in
  for _ = 1 to 256 do
    ignore (Drive.service d (Request.read ~lba:!pos ~sectors:64));
    pos := !pos + 64
  done;
  let mb = 256.0 *. 64.0 *. 512.0 /. 1.0e6 in
  let rate = mb /. (Drive.now d -. t0) in
  let media = Profile.media_mb_per_s st31200 in
  (* Within 40% of media rate (outer zone is faster than the average). *)
  check Alcotest.bool "sequential read near media rate" true
    (rate > media *. 0.6 && rate < media *. 1.6)

let test_drive_repeated_same_block_write_rotation () =
  (* Synchronously rewriting one block costs about a full revolution each
     time: the mechanism the paper exploits on delete is not free. *)
  let d = Drive.create st31200 in
  ignore (Drive.service d (Request.write ~lba:5000 ~sectors:8));
  let t = Drive.service d (Request.write ~lba:5000 ~sectors:8) in
  check Alcotest.bool "costs ~a revolution" true
    (t > 0.5 *. rev_time && t < (2.0 *. rev_time) +. 0.002)

let test_drive_advance_moves_clock () =
  let d = Drive.create st31200 in
  Drive.advance d 1.5;
  check (Alcotest.float 1e-9) "clock" 1.5 (Drive.now d)

let test_drive_cache_hits_counted () =
  let d = Drive.create st31200 in
  ignore (Drive.service d (Request.read ~lba:1000 ~sectors:64));
  ignore (Drive.service d (Request.read ~lba:1000 ~sectors:8));
  check Alcotest.int "one cache hit" 1 (Drive.stats d).Request.Stats.cache_hits

let test_drive_flush_cache () =
  let d = Drive.create st31200 in
  ignore (Drive.service d (Request.read ~lba:1000 ~sectors:64));
  Drive.flush_cache d;
  ignore (Drive.service d (Request.read ~lba:1000 ~sectors:8));
  check Alcotest.int "no hit after flush" 0 (Drive.stats d).Request.Stats.cache_hits

let test_drive_write_invalidates () =
  let d = Drive.create st31200 in
  ignore (Drive.service d (Request.read ~lba:1000 ~sectors:64));
  ignore (Drive.service d (Request.write ~lba:1010 ~sectors:8));
  ignore (Drive.service d (Request.read ~lba:1000 ~sectors:8));
  check Alcotest.int "read after write misses" 0 (Drive.stats d).Request.Stats.cache_hits

let test_random_4k_access_time_plausible () =
  (* The Figure 2 anchor: a random 4 KB access on the ST31200 averages about
     controller + avg seek + half rotation + transfer = 16-18 ms. *)
  let d = Drive.create st31200 in
  let prng = Prng.create 77 in
  let acc = ref 0.0 in
  let n = 500 in
  for _ = 1 to n do
    Drive.advance d (Prng.float prng 0.05);
    let lba = Prng.int prng (Drive.total_sectors d - 8) in
    acc := !acc +. Drive.service d (Request.read ~lba ~sectors:8)
  done;
  let avg_ms = !acc /. float_of_int n *. 1000.0 in
  check Alcotest.bool "random 4K ~17ms" true (avg_ms > 13.0 && avg_ms < 21.0)

(* ------------------------------------------------------------------ *)
(* Schedulers *)

let mk_reqs lbas = List.map (fun lba -> Request.write ~lba ~sectors:8) lbas

let lbas_of reqs = List.map (fun (r : Request.t) -> r.Request.lba) reqs

let test_scheduler_fcfs () =
  let g = Geometry.of_profile st31200 in
  let reqs = mk_reqs [ 500; 100; 900 ] in
  check (Alcotest.list Alcotest.int) "fcfs keeps order" [ 500; 100; 900 ]
    (lbas_of (Scheduler.order Scheduler.Fcfs g ~current_cyl:0 reqs))

let test_scheduler_clook () =
  let g = Geometry.of_profile st31200 in
  let cur = Geometry.cyl_of_lba g 50000 in
  let reqs = mk_reqs [ 10000; 60000; 40000; 90000 ] in
  check (Alcotest.list Alcotest.int) "ascending from current, then wrap"
    [ 60000; 90000; 10000; 40000 ]
    (lbas_of (Scheduler.order Scheduler.Clook g ~current_cyl:cur reqs))

let test_scheduler_sstf () =
  let g = Geometry.of_profile st31200 in
  let cur = Geometry.cyl_of_lba g 50000 in
  let reqs = mk_reqs [ 10000; 60000; 90000 ] in
  check (Alcotest.list Alcotest.int) "greedy nearest" [ 60000; 90000; 10000 ]
    (lbas_of (Scheduler.order Scheduler.Sstf g ~current_cyl:cur reqs))

let qcheck_schedulers_preserve_requests =
  qtest "schedulers: output is a permutation of input"
    QCheck.(pair (int_bound 2) (list_of_size (Gen.int_range 0 30)
              (int_bound (Profile.total_sectors st31200 - 8))))
    (fun (which, lbas) ->
      let g = Geometry.of_profile st31200 in
      let policy =
        match which with 0 -> Scheduler.Fcfs | 1 -> Scheduler.Clook | _ -> Scheduler.Sstf
      in
      let reqs = mk_reqs lbas in
      let out = Scheduler.order policy g ~current_cyl:100 reqs in
      List.sort compare (lbas_of out) = List.sort compare lbas)

let test_scheduler_names () =
  check (Alcotest.option Alcotest.string) "parse clook" (Some "C-LOOK")
    (Option.map Scheduler.policy_name (Scheduler.policy_of_string "c-look"));
  check Alcotest.bool "parse junk" true (Scheduler.policy_of_string "elevator?" = None)

let () =
  Alcotest.run "cffs_disk"
    [
      ( "profile",
        [
          Alcotest.test_case "capacities plausible" `Quick test_profile_capacities;
          Alcotest.test_case "media rates plausible" `Quick test_profile_media_rates;
          Alcotest.test_case "lookup by name" `Quick test_profile_lookup;
          Alcotest.test_case "C2247 bandwidth trend" `Quick test_profile_c2247_slower;
          Alcotest.test_case "truncated profile" `Quick test_profile_truncated;
        ] );
      ( "seek",
        [
          Alcotest.test_case "endpoints" `Quick test_seek_endpoints;
          Alcotest.test_case "monotonic" `Quick test_seek_monotonic;
          Alcotest.test_case "average matches spec" `Quick test_seek_average_fit;
          Alcotest.test_case "short seeks expensive" `Quick test_seek_short_seeks_expensive;
        ] );
      ( "geometry",
        [
          Alcotest.test_case "total sectors" `Quick test_geometry_total;
          Alcotest.test_case "first/last" `Quick test_geometry_first_last;
          Alcotest.test_case "bounds" `Quick test_geometry_out_of_range;
          qcheck_geometry_roundtrip;
          qcheck_geometry_monotone_cyl;
        ] );
      ( "request",
        [
          Alcotest.test_case "basics" `Quick test_request_basics;
          Alcotest.test_case "stats diff" `Quick test_stats_diff;
        ] );
      ( "dcache",
        [
          Alcotest.test_case "hit/miss" `Quick test_dcache_hit_miss;
          Alcotest.test_case "settle extends" `Quick test_dcache_settle_extends;
          Alcotest.test_case "close stops prefetch" `Quick test_dcache_close_open_stops;
          Alcotest.test_case "invalidate" `Quick test_dcache_invalidate;
          Alcotest.test_case "streaming join" `Quick test_dcache_streaming_join;
          Alcotest.test_case "segment eviction" `Quick test_dcache_lru_eviction;
        ] );
      ( "drive",
        [
          Alcotest.test_case "service bounds" `Quick test_drive_service_bounds;
          Alcotest.test_case "sequential ~ media rate" `Quick test_drive_sequential_media_rate;
          Alcotest.test_case "same-block rewrite ~ rotation" `Quick
            test_drive_repeated_same_block_write_rotation;
          Alcotest.test_case "advance" `Quick test_drive_advance_moves_clock;
          Alcotest.test_case "cache hits counted" `Quick test_drive_cache_hits_counted;
          Alcotest.test_case "flush cache" `Quick test_drive_flush_cache;
          Alcotest.test_case "write invalidates" `Quick test_drive_write_invalidates;
          Alcotest.test_case "random 4K ~ 17ms" `Quick test_random_4k_access_time_plausible;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "fcfs" `Quick test_scheduler_fcfs;
          Alcotest.test_case "c-look" `Quick test_scheduler_clook;
          Alcotest.test_case "sstf" `Quick test_scheduler_sstf;
          Alcotest.test_case "names" `Quick test_scheduler_names;
          qcheck_schedulers_preserve_requests;
        ] );
    ]
