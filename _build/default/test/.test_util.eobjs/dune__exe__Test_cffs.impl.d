test/test_cffs.ml: Alcotest Buffer Bytes Cffs Cffs_blockdev Cffs_cache Cffs_disk Cffs_vfs Cffs_workload Digest Ffs Fs_battery Hashtbl List Printf QCheck QCheck_alcotest String
