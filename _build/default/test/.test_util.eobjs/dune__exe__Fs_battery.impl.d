test/fs_battery.ml: Alcotest Bytes Cffs_util Cffs_vfs Hashtbl List Printf QCheck QCheck_alcotest String
