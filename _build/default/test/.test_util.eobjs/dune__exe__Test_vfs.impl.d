test/test_vfs.ml: Alcotest Array Bytes Cffs_blockdev Cffs_cache Cffs_util Cffs_vfs Gen Hashtbl List Printf QCheck QCheck_alcotest String
