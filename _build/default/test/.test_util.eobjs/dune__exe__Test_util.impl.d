test/test_util.ml: Alcotest Array Bytes Cffs_util Char Float Fun Gen List QCheck QCheck_alcotest String
