test/test_fsck.ml: Alcotest Bytes Cffs Cffs_blockdev Cffs_cache Cffs_disk Cffs_fsck Cffs_util Cffs_vfs Cffs_workload Ffs Format List Printf QCheck QCheck_alcotest
