test/test_workload.ml: Alcotest Bytes Cffs Cffs_blockdev Cffs_cache Cffs_disk Cffs_util Cffs_vfs Cffs_workload Filename List Printf Sys
