test/test_disk.ml: Alcotest Cffs_disk Cffs_util Float Gen List Option QCheck QCheck_alcotest
