test/test_cffs.mli:
