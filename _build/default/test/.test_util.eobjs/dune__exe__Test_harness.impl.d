test/test_harness.ml: Alcotest Cffs Cffs_cache Cffs_harness Cffs_util Cffs_workload List Printf String
