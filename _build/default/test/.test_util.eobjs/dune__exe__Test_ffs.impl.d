test/test_ffs.ml: Alcotest Bytes Cffs_blockdev Cffs_cache Cffs_vfs Ffs Fs_battery List Option Printf
