test/test_blockdev.ml: Alcotest Array Bytes Cffs_blockdev Cffs_disk Cffs_util Char Hashtbl List QCheck QCheck_alcotest
