test/test_cache.ml: Alcotest Bytes Cffs_blockdev Cffs_cache Cffs_disk Char List
