(* Tests for the block-device layer: both the untimed memory backend and the
   drive-backed backend, batched writes and crash images. *)

module Blockdev = Cffs_blockdev.Blockdev
module Drive = Cffs_disk.Drive
module Profile = Cffs_disk.Profile
module Request = Cffs_disk.Request
module Prng = Cffs_util.Prng

let check = Alcotest.check
let qtest ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let mem () = Blockdev.memory ~block_size:4096 ~nblocks:1024
let timed () = Blockdev.of_drive (Drive.create Profile.seagate_st31200) ~block_size:4096

let block c = Bytes.make 4096 c

let test_mem_roundtrip () =
  let dev = mem () in
  Blockdev.write dev 5 (block 'x');
  check Alcotest.bytes "read back" (block 'x') (Blockdev.read dev 5 1);
  check Alcotest.bytes "unwritten is zero" (block '\000') (Blockdev.read dev 6 1)

let test_mem_multi_block () =
  let dev = mem () in
  let data = Bytes.concat Bytes.empty [ block 'a'; block 'b'; block 'c' ] in
  Blockdev.write dev 10 data;
  check Alcotest.bytes "read 3" data (Blockdev.read dev 10 3);
  check Alcotest.bytes "middle" (block 'b') (Blockdev.read dev 11 1)

let test_bounds () =
  let dev = mem () in
  let reject f = try f (); false with Invalid_argument _ -> true in
  check Alcotest.bool "read past end" true (reject (fun () -> ignore (Blockdev.read dev 1023 2)));
  check Alcotest.bool "negative" true (reject (fun () -> ignore (Blockdev.read dev (-1) 1)));
  check Alcotest.bool "partial block write" true
    (reject (fun () -> Blockdev.write dev 0 (Bytes.make 100 'x')))

let test_mem_time_is_zero () =
  let dev = mem () in
  Blockdev.write dev 0 (block 'x');
  ignore (Blockdev.read dev 0 1);
  check (Alcotest.float 0.0) "clock still 0" 0.0 (Blockdev.now dev);
  Blockdev.advance dev 2.0;
  check (Alcotest.float 0.0) "advance works" 2.0 (Blockdev.now dev)

let test_timed_advances_clock () =
  let dev = timed () in
  let t0 = Blockdev.now dev in
  ignore (Blockdev.read dev 500 1);
  check Alcotest.bool "time passed" true (Blockdev.now dev > t0);
  check Alcotest.int "stat recorded" 1 (Blockdev.stats dev).Request.Stats.reads

let test_write_batch_counts () =
  let dev = timed () in
  Blockdev.write_batch dev [ (1, block 'a'); (2, block 'b'); (3, block 'c') ];
  (* No clustering in write_batch: one request per block. *)
  check Alcotest.int "3 requests" 3 (Blockdev.stats dev).Request.Stats.writes;
  check Alcotest.bytes "stored" (block 'b') (Blockdev.read dev 2 1)

let test_write_batch_units_single_request () =
  let dev = timed () in
  Blockdev.write_batch_units dev [ (10, [ block 'a'; block 'b'; block 'c' ]) ];
  check Alcotest.int "1 request" 1 (Blockdev.stats dev).Request.Stats.writes;
  check Alcotest.int "24 sectors" 24 (Blockdev.stats dev).Request.Stats.write_sectors;
  check Alcotest.bytes "unit stored" (block 'c') (Blockdev.read dev 12 1)

let test_snapshot_restore () =
  let dev = mem () in
  Blockdev.write dev 1 (block 'a');
  let img = Blockdev.snapshot dev in
  check Alcotest.int "one block in image" 1 (Blockdev.blocks_written img);
  Blockdev.write dev 1 (block 'b');
  Blockdev.write dev 2 (block 'c');
  Blockdev.restore dev img;
  check Alcotest.bytes "block 1 restored" (block 'a') (Blockdev.read dev 1 1);
  check Alcotest.bytes "block 2 gone" (block '\000') (Blockdev.read dev 2 1)

let test_snapshot_isolated () =
  let dev = mem () in
  Blockdev.write dev 1 (block 'a');
  let img = Blockdev.snapshot dev in
  Blockdev.write dev 1 (block 'z');
  Blockdev.restore dev img;
  check Alcotest.bytes "snapshot deep-copied" (block 'a') (Blockdev.read dev 1 1)

let test_corrupt_block () =
  let dev = mem () in
  Blockdev.write dev 3 (block 'a');
  Blockdev.corrupt_block dev 3 (Prng.create 1);
  check Alcotest.bool "changed" true (Blockdev.read dev 3 1 <> block 'a')

let qcheck_store_model =
  qtest "blockdev: random writes then reads agree with a model"
    QCheck.(list (pair (int_bound 63) (int_bound 255)))
    (fun writes ->
      let dev = mem () in
      let model = Array.make 64 (block '\000') in
      List.iter
        (fun (blk, v) ->
          let b = block (Char.chr v) in
          Blockdev.write dev blk b;
          model.(blk) <- b)
        writes;
      let ok = ref true in
      Array.iteri (fun i expect -> if Blockdev.read dev i 1 <> expect then ok := false) model;
      !ok)

let test_clook_batch_cheaper_than_fcfs () =
  (* The scheduler matters: a scattered batch serviced in C-LOOK order takes
     less simulated time than the same batch first-come-first-served. *)
  let run policy =
    let dev =
      Blockdev.of_drive ~policy (Drive.create Profile.seagate_st31200) ~block_size:4096
    in
    let prng = Prng.create 9 in
    let batch =
      List.init 200 (fun i ->
          ignore i;
          (Prng.int prng (Blockdev.nblocks dev), block 'x'))
    in
    (* Deduplicate blocks to keep the batch well-formed. *)
    let seen = Hashtbl.create 64 in
    let batch =
      List.filter
        (fun (b, _) ->
          if Hashtbl.mem seen b then false
          else begin
            Hashtbl.add seen b ();
            true
          end)
        batch
    in
    Blockdev.write_batch dev batch;
    Blockdev.now dev
  in
  let fcfs = run Cffs_disk.Scheduler.Fcfs in
  let clook = run Cffs_disk.Scheduler.Clook in
  check Alcotest.bool "C-LOOK at least 1.5x faster" true (clook *. 1.5 < fcfs)

let () =
  Alcotest.run "cffs_blockdev"
    [
      ( "memory",
        [
          Alcotest.test_case "roundtrip" `Quick test_mem_roundtrip;
          Alcotest.test_case "multi-block" `Quick test_mem_multi_block;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "zero time" `Quick test_mem_time_is_zero;
          qcheck_store_model;
        ] );
      ( "timed",
        [
          Alcotest.test_case "clock advances" `Quick test_timed_advances_clock;
          Alcotest.test_case "write_batch one request per block" `Quick
            test_write_batch_counts;
          Alcotest.test_case "write_batch_units one request per unit" `Quick
            test_write_batch_units_single_request;
          Alcotest.test_case "C-LOOK beats FCFS on scattered batch" `Quick
            test_clook_batch_cheaper_than_fcfs;
        ] );
      ( "image",
        [
          Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
          Alcotest.test_case "snapshot isolation" `Quick test_snapshot_isolated;
          Alcotest.test_case "corrupt block" `Quick test_corrupt_block;
        ] );
    ]
