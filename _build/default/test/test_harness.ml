(* Harness tests: the experiment entry points render complete tables at a
   quick scale, and the headline qualitative results of the paper hold in
   miniature. *)

module Experiments = Cffs_harness.Experiments
module Setup = Cffs_harness.Setup
module Smallfile = Cffs_workload.Smallfile
module Tablefmt = Cffs_util.Tablefmt
module Cache = Cffs_cache.Cache

let check = Alcotest.check

let scale = Experiments.quick

let lines t = String.split_on_char '\n' (Tablefmt.render t)
let contains t needle =
  List.exists
    (fun l ->
      let rec scan i =
        i + String.length needle <= String.length l
        && (String.sub l i (String.length needle) = needle || scan (i + 1))
      in
      String.length needle <= String.length l && scan 0)
    (lines t)

(* ------------------------------------------------------------------ *)

let test_setup_configs () =
  check Alcotest.int "five configurations" 5 (List.length Setup.five_configs);
  check Alcotest.string "label ffs" "FFS" (Setup.fs_kind_label Setup.Ffs_baseline);
  check Alcotest.string "label both" "C-FFS (EI+EG)"
    (Setup.fs_kind_label (Setup.Cffs_fs Cffs.config_default))

let test_setup_instantiate_both () =
  let i1 = Setup.instantiate (Setup.standard Setup.Ffs_baseline) in
  check Alcotest.bool "ffs handle" true (i1.Setup.ffs <> None && i1.Setup.cffs = None);
  let i2 = Setup.instantiate (Setup.standard (Setup.Cffs_fs Cffs.config_default)) in
  check Alcotest.bool "cffs handle" true (i2.Setup.cffs <> None && i2.Setup.ffs = None)

let test_table1 () =
  let t = Experiments.table1_drives () in
  check Alcotest.bool "has drives" true (contains t "HP C3653");
  check Alcotest.bool "has seeks" true (contains t "Average seek")

let test_fig2 () =
  let t = Experiments.fig2_access_time scale in
  check Alcotest.bool "has sizes" true (contains t "64.0 KB");
  (* Eleven request sizes plus header/rule. *)
  check Alcotest.bool "row count" true (List.length (lines t) >= 13)

let test_table2 () =
  let t = Experiments.table2_setup_drive () in
  check Alcotest.bool "st31200" true (contains t "ST31200")

let test_smallfile_tables () =
  let tput, reqs = Experiments.smallfile scale Cache.Sync_metadata in
  List.iter
    (fun name ->
      check Alcotest.bool (name ^ " in tput") true (contains tput name);
      check Alcotest.bool (name ^ " in reqs") true (contains reqs name))
    [ "FFS"; "C-FFS (none)"; "C-FFS (EI)"; "C-FFS (EG)"; "C-FFS (EI+EG)" ]

let test_fig7 () =
  let t = Experiments.fig7_size_sweep scale in
  check Alcotest.bool "sweep sizes present" true
    (contains t "1.0 KB" && contains t "64.0 KB")

let test_fig8 () =
  let t = Experiments.fig8_aging scale in
  check Alcotest.bool "has rows" true (List.length (lines t) >= 4)

let test_table3 () =
  let t = Experiments.table3_apps scale in
  List.iter
    (fun app -> check Alcotest.bool (app ^ " present") true (contains t app))
    [ "untar"; "search"; "compile"; "pack"; "copy"; "clean" ]

let test_table_dirsize () =
  let t = Experiments.table_dirsize () in
  check Alcotest.bool "configs present" true
    (contains t "C-FFS (EI)" && contains t "FFS")

let test_table_large () =
  let t = Experiments.table_large scale in
  check Alcotest.bool "rows" true (contains t "C-FFS (EI+EG)")

let test_ablations () =
  let t = Experiments.ablation_scheduler scale in
  check Alcotest.bool "schedulers" true
    (contains t "FCFS" && contains t "C-LOOK" && contains t "SSTF");
  let t = Experiments.ablation_group_size scale in
  check Alcotest.bool "frame sizes" true (contains t "64.0 KB")

(* ------------------------------------------------------------------ *)
(* Headline qualitative claims, in miniature. *)

let run_phases kind policy =
  let inst = Setup.instantiate (Setup.standard ~policy kind) in
  Smallfile.run ~nfiles:scale.Experiments.smallfile_files inst.Setup.env

let phase rs p =
  List.find (fun (r : Smallfile.result) -> r.Smallfile.phase = p) rs

let test_claim_read_request_reduction () =
  (* "reducing the number of disk accesses required by an order of
     magnitude" *)
  let base = run_phases (Setup.Cffs_fs Cffs.config_ffs_like) Cache.Sync_metadata in
  let cffs = run_phases (Setup.Cffs_fs Cffs.config_default) Cache.Sync_metadata in
  let b = (phase base Smallfile.Read).Smallfile.requests_per_file in
  let c = (phase cffs Smallfile.Read).Smallfile.requests_per_file in
  check Alcotest.bool
    (Printf.sprintf "read requests %.2f -> %.2f (>5x fewer)" b c)
    true (c < b /. 5.0)

let test_claim_read_throughput () =
  let base = run_phases (Setup.Cffs_fs Cffs.config_ffs_like) Cache.Sync_metadata in
  let cffs = run_phases (Setup.Cffs_fs Cffs.config_default) Cache.Sync_metadata in
  let b = (phase base Smallfile.Read).Smallfile.files_per_sec in
  let c = (phase cffs Smallfile.Read).Smallfile.files_per_sec in
  check Alcotest.bool
    (Printf.sprintf "read throughput %.0f -> %.0f (>1.5x)" b c)
    true (c > b *. 1.5)

let test_claim_delete_improvement () =
  (* "a 250% increase in file deletion throughput" from embedded inodes:
     at minimum, deletes must get substantially faster. *)
  let base = run_phases (Setup.Cffs_fs Cffs.config_ffs_like) Cache.Sync_metadata in
  let ei =
    run_phases (Setup.Cffs_fs { Cffs.config_default with Cffs.grouping = false })
      Cache.Sync_metadata
  in
  let b = (phase base Smallfile.Delete).Smallfile.files_per_sec in
  let c = (phase ei Smallfile.Delete).Smallfile.files_per_sec in
  check Alcotest.bool
    (Printf.sprintf "delete throughput %.0f -> %.0f (>1.3x)" b c)
    true (c > b *. 1.3)

let test_claim_delayed_create_speedup () =
  (* With soft updates emulated, grouping turns the create phase from
     one-request-per-block into a few large writes. *)
  let base = run_phases (Setup.Cffs_fs Cffs.config_ffs_like) Cache.Delayed in
  let cffs = run_phases (Setup.Cffs_fs Cffs.config_default) Cache.Delayed in
  let b = (phase base Smallfile.Create).Smallfile.files_per_sec in
  let c = (phase cffs Smallfile.Create).Smallfile.files_per_sec in
  check Alcotest.bool
    (Printf.sprintf "delayed create %.0f -> %.0f (>2x)" b c)
    true (c > b *. 2.0)

let () =
  Alcotest.run "cffs_harness"
    [
      ( "setup",
        [
          Alcotest.test_case "configs" `Quick test_setup_configs;
          Alcotest.test_case "instantiate" `Quick test_setup_instantiate_both;
        ] );
      ( "tables",
        [
          Alcotest.test_case "table1" `Quick test_table1;
          Alcotest.test_case "fig2" `Quick test_fig2;
          Alcotest.test_case "table2" `Quick test_table2;
          Alcotest.test_case "smallfile" `Quick test_smallfile_tables;
          Alcotest.test_case "fig7" `Quick test_fig7;
          Alcotest.test_case "fig8" `Quick test_fig8;
          Alcotest.test_case "table3" `Quick test_table3;
          Alcotest.test_case "dirsize" `Quick test_table_dirsize;
          Alcotest.test_case "large" `Quick test_table_large;
          Alcotest.test_case "ablations" `Quick test_ablations;
        ] );
      ( "claims",
        [
          Alcotest.test_case "request reduction" `Quick test_claim_read_request_reduction;
          Alcotest.test_case "read throughput" `Quick test_claim_read_throughput;
          Alcotest.test_case "delete improvement" `Quick test_claim_delete_improvement;
          Alcotest.test_case "delayed create speedup" `Quick
            test_claim_delayed_create_speedup;
        ] );
    ]
