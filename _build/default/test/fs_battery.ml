(* A file-system test battery shared by the FFS and C-FFS suites: every
   case runs unchanged against any Cffs_vfs.Fs_intf.S implementation, so the
   two file systems (and all four C-FFS configurations) are held to the same
   semantics. *)

module Errno = Cffs_vfs.Errno
module Fs_intf = Cffs_vfs.Fs_intf
module Inode = Cffs_vfs.Inode
module Prng = Cffs_util.Prng

let check = Alcotest.check
let err = Alcotest.testable Errno.pp ( = )
let ures = Alcotest.result Alcotest.unit err

module Make (F : Fs_intf.S) = struct
  let ok what = Errno.get_ok what

  let payload n seed =
    let prng = Prng.create seed in
    Prng.bytes prng n

  (* ---------------- basic data path ---------------- *)

  let test_write_read fs () =
    ok "mkdir" (F.mkdir fs "/d");
    let data = payload 1000 1 in
    ok "write" (F.write_file fs "/d/f" data);
    check Alcotest.bytes "roundtrip" data (ok "read" (F.read_file fs "/d/f"));
    let st = ok "stat" (F.stat fs "/d/f") in
    check Alcotest.int "size" 1000 st.Fs_intf.st_size;
    check Alcotest.bool "kind" true (st.Fs_intf.st_kind = Inode.Regular)

  let test_empty_file fs () =
    ok "create" (F.create fs "/empty");
    check Alcotest.int "size 0" 0 (ok "stat" (F.stat fs "/empty")).Fs_intf.st_size;
    check Alcotest.bytes "empty read" Bytes.empty (ok "read" (F.read_file fs "/empty"))

  let test_overwrite_grow_shrink fs () =
    ok "w1" (F.write_file fs "/f" (payload 5000 1));
    ok "w2 shrink" (F.write_file fs "/f" (payload 100 2));
    check Alcotest.bytes "shrunk" (payload 100 2) (ok "r" (F.read_file fs "/f"));
    ok "w3 grow" (F.write_file fs "/f" (payload 9000 3));
    check Alcotest.bytes "grown" (payload 9000 3) (ok "r" (F.read_file fs "/f"))

  let test_append fs () =
    ok "w" (F.write_file fs "/f" (Bytes.of_string "hello "));
    ok "a" (F.append_file fs "/f" (Bytes.of_string "world"));
    check Alcotest.bytes "appended" (Bytes.of_string "hello world")
      (ok "r" (F.read_file fs "/f"))

  let test_partial_io fs () =
    ok "w" (F.write_file fs "/f" (Bytes.make 10000 'a'));
    ok "pw" (F.write fs "/f" ~off:5000 (Bytes.make 100 'b'));
    let r = ok "pr" (F.read fs "/f" ~off:4999 ~len:102) in
    check Alcotest.bytes "partial rw"
      (Bytes.of_string ("a" ^ String.make 100 'b' ^ "a"))
      r;
    (* Reading past EOF is clipped. *)
    check Alcotest.int "clipped" 1000 (Bytes.length (ok "r" (F.read fs "/f" ~off:9000 ~len:5000)))

  let test_sparse_hole fs () =
    ok "create" (F.create fs "/sparse");
    ok "far write" (F.write fs "/sparse" ~off:100000 (Bytes.of_string "end"));
    let st = ok "stat" (F.stat fs "/sparse") in
    check Alcotest.int "size" 100003 st.Fs_intf.st_size;
    (* The hole reads as zeros. *)
    let hole = ok "hole" (F.read fs "/sparse" ~off:50000 ~len:64) in
    check Alcotest.bytes "zeros" (Bytes.make 64 '\000') hole;
    check Alcotest.bytes "tail" (Bytes.of_string "end")
      (ok "tail" (F.read fs "/sparse" ~off:100000 ~len:3));
    (* Sparse: far fewer blocks than the size suggests. *)
    check Alcotest.bool "few blocks" true (st.Fs_intf.st_blocks < 8)

  let test_big_file fs () =
    (* Crosses the single-indirect boundary (48 KB + 4 MB) into
       double-indirect territory. *)
    let n = (5 * 1024 * 1024) + 4321 in
    let data = payload n 9 in
    ok "w big" (F.write_file fs "/big" data);
    check Alcotest.bytes "big roundtrip" data (ok "r" (F.read_file fs "/big"));
    F.remount fs;
    check Alcotest.bytes "big after remount" data (ok "r2" (F.read_file fs "/big"))

  let test_truncate fs () =
    ok "w" (F.write_file fs "/f" (payload 100000 1));
    let free0 = (F.usage fs).Fs_intf.free_blocks in
    ok "trunc" (F.write_file fs "/f" Bytes.empty);
    check Alcotest.int "size 0" 0 (ok "st" (F.stat fs "/f")).Fs_intf.st_size;
    check Alcotest.bool "blocks freed" true ((F.usage fs).Fs_intf.free_blocks > free0)

  let test_partial_truncate fs () =
    let data = payload 100000 6 in
    ok "w" (F.write_file fs "/f" data);
    let free_full = (F.usage fs).Fs_intf.free_blocks in
    (* Shrink to a non-block-aligned size. *)
    ok "shrink" (F.truncate fs "/f" 45000);
    check Alcotest.int "size" 45000 (ok "st" (F.stat fs "/f")).Fs_intf.st_size;
    check Alcotest.bytes "kept prefix" (Bytes.sub data 0 45000)
      (ok "r" (F.read_file fs "/f"));
    check Alcotest.bool "blocks freed" true
      ((F.usage fs).Fs_intf.free_blocks > free_full);
    (* Grow back: the reappearing range must read as zeros. *)
    ok "grow" (F.truncate fs "/f" 50000);
    check Alcotest.int "size grown" 50000 (ok "st" (F.stat fs "/f")).Fs_intf.st_size;
    let tail = ok "r2" (F.read fs "/f" ~off:45000 ~len:5000) in
    check Alcotest.bytes "zeros after regrow" (Bytes.make 5000 '\000') tail;
    F.remount fs;
    check Alcotest.bytes "persisted prefix" (Bytes.sub data 0 45000)
      (ok "r3" (F.read fs "/f" ~off:0 ~len:45000))

  let test_truncate_large_file fs () =
    (* Shrink across the double-indirect boundary and verify indirect blocks
       are released. *)
    let data = payload ((5 * 1024 * 1024) + 100) 7 in
    ok "w" (F.write_file fs "/big" data);
    let blocks_full = (ok "st" (F.stat fs "/big")).Fs_intf.st_blocks in
    ok "shrink" (F.truncate fs "/big" 8192);
    let st = ok "st2" (F.stat fs "/big") in
    check Alcotest.int "2 blocks left" 2 st.Fs_intf.st_blocks;
    check Alcotest.bool "was much bigger" true (blocks_full > 1000);
    check Alcotest.bytes "content" (Bytes.sub data 0 8192) (ok "r" (F.read_file fs "/big"));
    check Alcotest.bool "truncate dir rejected" true
      (F.truncate fs "/" 0 = Error Errno.Eisdir)

  (* ---------------- namespace ---------------- *)

  let test_mkdir_nesting fs () =
    ok "deep" (F.mkdir_p fs "/a/b/c/d/e");
    ok "w" (F.write_file fs "/a/b/c/d/e/f" (Bytes.of_string "x"));
    check Alcotest.bool "exists" true (F.exists fs "/a/b/c/d/e/f");
    check Alcotest.bool "mkdir_p idempotent" true (F.mkdir_p fs "/a/b/c" = Ok ())

  let test_list_dir fs () =
    ok "mkdir" (F.mkdir fs "/d");
    List.iter (fun n -> ok "w" (F.write_file fs ("/d/" ^ n) (Bytes.of_string n)))
      [ "zeta"; "alpha"; "mid" ];
    ok "sub" (F.mkdir fs "/d/sub");
    check (Alcotest.list Alcotest.string) "sorted names"
      [ "alpha"; "mid"; "sub"; "zeta" ]
      (ok "ls" (F.list_dir fs "/d"))

  let test_unlink fs () =
    ok "w" (F.write_file fs "/f" (Bytes.of_string "x"));
    ok "rm" (F.unlink fs "/f");
    check Alcotest.bool "gone" false (F.exists fs "/f");
    check ures "again fails" (Error Errno.Enoent) (F.unlink fs "/f")

  let test_rmdir fs () =
    ok "mk" (F.mkdir fs "/d");
    ok "w" (F.write_file fs "/d/f" (Bytes.of_string "x"));
    check ures "not empty" (Error Errno.Enotempty) (F.rmdir fs "/d");
    ok "rm f" (F.unlink fs "/d/f");
    check ures "now ok" (Ok ()) (F.rmdir fs "/d");
    check Alcotest.bool "gone" false (F.exists fs "/d")

  let test_errors fs () =
    ok "mk" (F.mkdir fs "/d");
    ok "w" (F.write_file fs "/d/f" (Bytes.of_string "x"));
    check ures "create exists" (Error Errno.Eexist) (F.create fs "/d/f");
    check ures "mkdir exists" (Error Errno.Eexist) (F.mkdir fs "/d");
    check ures "mkdir over file" (Error Errno.Eexist) (F.mkdir fs "/d/f");
    check Alcotest.bool "enoent read" true (F.read_file fs "/nope" = Error Errno.Enoent);
    check Alcotest.bool "enoent parent" true
      (F.write_file fs "/nope/f" (Bytes.of_string "x") = Error Errno.Enoent);
    check Alcotest.bool "enotdir component" true
      (F.write_file fs "/d/f/g" (Bytes.of_string "x") = Error Errno.Enotdir);
    check Alcotest.bool "eisdir read" true (F.read_file fs "/d" = Error Errno.Eisdir);
    check ures "unlink dir" (Error Errno.Eisdir) (F.unlink fs "/d");
    check ures "rmdir file" (Error Errno.Enotdir) (F.rmdir fs "/d/f")

  let test_nlink_semantics fs () =
    ok "mk" (F.mkdir fs "/d");
    let root_before = (ok "st" (F.stat fs "/")).Fs_intf.st_nlink in
    ok "mk2" (F.mkdir fs "/e");
    check Alcotest.int "parent nlink grows" (root_before + 1)
      (ok "st" (F.stat fs "/")).Fs_intf.st_nlink;
    ok "rm" (F.rmdir fs "/e");
    check Alcotest.int "parent nlink shrinks" root_before
      (ok "st" (F.stat fs "/")).Fs_intf.st_nlink;
    check Alcotest.int "dir nlink" 2 (ok "st" (F.stat fs "/d")).Fs_intf.st_nlink

  (* ---------------- rename ---------------- *)

  let test_rename_file fs () =
    ok "w" (F.write_file fs "/f" (Bytes.of_string "content"));
    ok "mv" (F.rename_path fs ~src:"/f" ~dst:"/g");
    check Alcotest.bool "src gone" false (F.exists fs "/f");
    check Alcotest.bytes "content moved" (Bytes.of_string "content")
      (ok "r" (F.read_file fs "/g"))

  let test_rename_across_dirs fs () =
    ok "mk" (F.mkdir_p fs "/a/b");
    ok "mk2" (F.mkdir fs "/c");
    ok "w" (F.write_file fs "/a/b/f" (Bytes.of_string "zzz"));
    ok "mv" (F.rename_path fs ~src:"/a/b/f" ~dst:"/c/f2");
    check Alcotest.bytes "moved" (Bytes.of_string "zzz") (ok "r" (F.read_file fs "/c/f2"))

  let test_rename_replaces fs () =
    ok "w1" (F.write_file fs "/f" (Bytes.of_string "new"));
    ok "w2" (F.write_file fs "/g" (Bytes.of_string "old"));
    ok "mv" (F.rename_path fs ~src:"/f" ~dst:"/g");
    check Alcotest.bytes "replaced" (Bytes.of_string "new") (ok "r" (F.read_file fs "/g"));
    check Alcotest.bool "src gone" false (F.exists fs "/f")

  let test_rename_dir fs () =
    ok "mk" (F.mkdir_p fs "/a/b");
    ok "w" (F.write_file fs "/a/b/f" (Bytes.of_string "deep"));
    ok "mkc" (F.mkdir fs "/c");
    ok "mv" (F.rename_path fs ~src:"/a" ~dst:"/c/a2");
    check Alcotest.bytes "subtree moved" (Bytes.of_string "deep")
      (ok "r" (F.read_file fs "/c/a2/b/f"));
    check Alcotest.bool "old gone" false (F.exists fs "/a")

  let test_rename_into_self_rejected fs () =
    ok "mk" (F.mkdir_p fs "/a/b");
    check ures "into own subtree" (Error Errno.Einval)
      (F.rename_path fs ~src:"/a" ~dst:"/a/b/x");
    check ures "onto itself is a no-op" (Ok ()) (F.rename_path fs ~src:"/a" ~dst:"/a")

  (* ---------------- hard links ---------------- *)

  let test_hardlink fs () =
    ok "mk" (F.mkdir fs "/d");
    ok "w" (F.write_file fs "/f" (Bytes.of_string "shared"));
    ok "ln" (F.link fs ~existing:"/f" ~target:"/d/f2");
    check Alcotest.int "nlink 2" 2 (ok "st" (F.stat fs "/f")).Fs_intf.st_nlink;
    check Alcotest.bytes "read via link" (Bytes.of_string "shared")
      (ok "r" (F.read_file fs "/d/f2"));
    (* Writing through one name is visible through the other. *)
    ok "w2" (F.write fs "/d/f2" ~off:0 (Bytes.of_string "SHARED"));
    check Alcotest.bytes "shared storage" (Bytes.of_string "SHARED")
      (ok "r2" (F.read_file fs "/f"));
    ok "rm" (F.unlink fs "/f");
    check Alcotest.int "nlink 1" 1 (ok "st2" (F.stat fs "/d/f2")).Fs_intf.st_nlink;
    check Alcotest.bytes "survives" (Bytes.of_string "SHARED")
      (ok "r3" (F.read_file fs "/d/f2"))

  let test_hardlink_errors fs () =
    ok "mk" (F.mkdir fs "/d");
    check ures "link dir" (Error Errno.Eisdir) (F.link fs ~existing:"/d" ~target:"/d2");
    ok "w" (F.write_file fs "/f" (Bytes.of_string "x"));
    check ures "target exists" (Error Errno.Eexist) (F.link fs ~existing:"/f" ~target:"/d")

  (* ---------------- persistence & capacity ---------------- *)

  let test_remount_persistence fs () =
    ok "mk" (F.mkdir_p fs "/a/b");
    ok "w1" (F.write_file fs "/a/b/f" (payload 3000 4));
    ok "w2" (F.write_file fs "/top" (payload 200 5));
    F.remount fs;
    check Alcotest.bytes "deep file" (payload 3000 4) (ok "r" (F.read_file fs "/a/b/f"));
    check Alcotest.bytes "top file" (payload 200 5) (ok "r" (F.read_file fs "/top"));
    check (Alcotest.list Alcotest.string) "root listing" [ "a"; "top" ]
      (ok "ls" (F.list_dir fs "/"))

  let test_many_files fs () =
    ok "mk" (F.mkdir fs "/many");
    for i = 0 to 299 do
      ok "w" (F.write_file fs (Printf.sprintf "/many/f%03d" i) (payload (100 + i) i))
    done;
    F.remount fs;
    check Alcotest.int "300 files" 300 (List.length (ok "ls" (F.list_dir fs "/many")));
    for i = 0 to 299 do
      check Alcotest.bytes "content"
        (payload (100 + i) i)
        (ok "r" (F.read_file fs (Printf.sprintf "/many/f%03d" i)))
    done;
    for i = 0 to 299 do
      ok "rm" (F.unlink fs (Printf.sprintf "/many/f%03d" i))
    done;
    check Alcotest.int "empty" 0 (List.length (ok "ls" (F.list_dir fs "/many")));
    ok "rmdir" (F.rmdir fs "/many")

  let test_space_reclaimed fs () =
    let free0 = (F.usage fs).Fs_intf.free_blocks in
    for i = 0 to 49 do
      ok "w" (F.write_file fs (Printf.sprintf "/f%02d" i) (payload 20000 i))
    done;
    check Alcotest.bool "space consumed" true ((F.usage fs).Fs_intf.free_blocks < free0);
    for i = 0 to 49 do
      ok "rm" (F.unlink fs (Printf.sprintf "/f%02d" i))
    done;
    (* Allow a few blocks of permanent metadata growth (e.g. C-FFS's
       external inode file never shrinks). *)
    check Alcotest.bool "space reclaimed" true
      ((F.usage fs).Fs_intf.free_blocks >= free0 - 4)

  let test_enospc fs () =
    (* Fill the device; expect a clean ENOSPC, not a crash. *)
    let rec fill i =
      if i > 100000 then Alcotest.fail "device never filled"
      else begin
        match F.write_file fs (Printf.sprintf "/x%05d" i) (Bytes.make 65536 'x') with
        | Ok () -> fill (i + 1)
        | Error Errno.Enospc -> i
        | Error e -> Alcotest.failf "unexpected error %s" (Errno.to_string e)
      end
    in
    let n = fill 0 in
    check Alcotest.bool "wrote some files first" true (n > 3);
    (* The file system is still usable: delete one, write a small file. *)
    ok "rm" (F.unlink fs "/x00000");
    ok "w" (F.write_file fs "/small" (Bytes.of_string "fits"))

  (* ---------------- model-based property test ---------------- *)

  (* A reference model: path -> File contents | Dir. *)
  module Model = struct
    type node = MFile of bytes | MDir

    let create () =
      let t = Hashtbl.create 64 in
      Hashtbl.replace t "/" MDir;
      t

    let parent p = match Cffs_vfs.Path.dirname_basename p with
      | Ok (d, _) -> d
      | Error _ -> "/"

    let is_dir t p = Hashtbl.find_opt t p = Some MDir
    let exists t p = Hashtbl.mem t p

    let children t p =
      let prefix = if p = "/" then "/" else p ^ "/" in
      Hashtbl.fold
        (fun q _ acc ->
          if q <> "/" && String.length q > String.length prefix
             && String.sub q 0 (String.length prefix) = prefix
             && not (String.contains
                       (String.sub q (String.length prefix)
                          (String.length q - String.length prefix))
                       '/')
          then q :: acc
          else acc)
        t []

    let write_file t p data =
      if not (is_dir t (parent p)) then false
      else if is_dir t p then false
      else begin
        Hashtbl.replace t p (MFile data);
        true
      end

    let mkdir t p =
      if exists t p || not (is_dir t (parent p)) then false
      else begin
        Hashtbl.replace t p MDir;
        true
      end

    let unlink t p =
      match Hashtbl.find_opt t p with
      | Some (MFile _) ->
          Hashtbl.remove t p;
          true
      | Some MDir | None -> false

    let rmdir t p =
      if p <> "/" && is_dir t p && children t p = [] then begin
        Hashtbl.remove t p;
        true
      end
      else false
  end

  type op =
    | Op_write of string * int
    | Op_mkdir of string
    | Op_unlink of string
    | Op_rmdir of string

  let dirs_pool = [ "/d0"; "/d1"; "/d0/s0"; "/d1/s1" ]
  let files_pool =
    [ "/f0"; "/f1"; "/d0/f0"; "/d0/f1"; "/d1/f0"; "/d0/s0/f0"; "/d1/s1/f0" ]

  let op_gen =
    let open QCheck.Gen in
    frequency
      [
        (4, map2 (fun i n -> Op_write (List.nth files_pool (i mod 7), n))
             (int_bound 100) (int_range 0 9000));
        (2, map (fun i -> Op_mkdir (List.nth dirs_pool (i mod 4))) (int_bound 100));
        (2, map (fun i -> Op_unlink (List.nth files_pool (i mod 7))) (int_bound 100));
        (1, map (fun i -> Op_rmdir (List.nth dirs_pool (i mod 4))) (int_bound 100));
      ]

  let apply_both fs model op =
    match op with
    | Op_write (p, n) ->
        let data = payload n (Hashtbl.hash p + n) in
        let fs_ok = F.write_file fs p data = Ok () in
        let model_ok = Model.write_file model p data in
        if fs_ok <> model_ok then
          Alcotest.failf "write_file %s: fs=%b model=%b" p fs_ok model_ok
    | Op_mkdir p ->
        let fs_ok = F.mkdir fs p = Ok () in
        let model_ok = Model.mkdir model p in
        if fs_ok <> model_ok then Alcotest.failf "mkdir %s: fs=%b model=%b" p fs_ok model_ok
    | Op_unlink p ->
        let fs_ok = F.unlink fs p = Ok () in
        let model_ok = Model.unlink model p in
        if fs_ok <> model_ok then Alcotest.failf "unlink %s: fs=%b model=%b" p fs_ok model_ok
    | Op_rmdir p ->
        let fs_ok = F.rmdir fs p = Ok () in
        let model_ok = Model.rmdir model p in
        if fs_ok <> model_ok then Alcotest.failf "rmdir %s: fs=%b model=%b" p fs_ok model_ok

  let compare_trees fs model =
    Hashtbl.iter
      (fun p node ->
        match node with
        | Model.MDir ->
            if p <> "/" then begin
              let st = ok ("stat dir " ^ p) (F.stat fs p) in
              check Alcotest.bool ("dir kind " ^ p) true
                (st.Fs_intf.st_kind = Inode.Directory)
            end;
            let expect = List.sort compare
                (List.map (fun q ->
                     match Cffs_vfs.Path.dirname_basename q with
                     | Ok (_, b) -> b
                     | Error _ -> assert false)
                    (Model.children model p))
            in
            check (Alcotest.list Alcotest.string) ("listing " ^ p) expect
              (ok ("ls " ^ p) (F.list_dir fs p))
        | Model.MFile data ->
            check Alcotest.bytes ("content " ^ p) data (ok ("read " ^ p) (F.read_file fs p)))
      model

  let model_property fresh_fs ops =
    let fs = fresh_fs () in
    let model = Model.create () in
    List.iter (apply_both fs model) ops;
    compare_trees fs model;
    F.remount fs;
    compare_trees fs model;
    true

  let qcheck_model fresh_fs =
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:40 ~name:"random ops agree with model and survive remount"
         (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 60) op_gen))
         (model_property fresh_fs))

  (* ---------------- the suite ---------------- *)

  let tests fresh_fs =
    let t name f = Alcotest.test_case name `Quick (fun () -> f (fresh_fs ()) ()) in
    [
      t "write/read roundtrip" test_write_read;
      t "empty file" test_empty_file;
      t "overwrite grow/shrink" test_overwrite_grow_shrink;
      t "append" test_append;
      t "partial I/O" test_partial_io;
      t "sparse holes" test_sparse_hole;
      t "big file (double indirect)" test_big_file;
      t "truncate frees blocks" test_truncate;
      t "partial truncate" test_partial_truncate;
      t "truncate large file" test_truncate_large_file;
      t "nested mkdir" test_mkdir_nesting;
      t "list_dir" test_list_dir;
      t "unlink" test_unlink;
      t "rmdir" test_rmdir;
      t "error codes" test_errors;
      t "nlink semantics" test_nlink_semantics;
      t "rename file" test_rename_file;
      t "rename across dirs" test_rename_across_dirs;
      t "rename replaces" test_rename_replaces;
      t "rename directory" test_rename_dir;
      t "rename into self rejected" test_rename_into_self_rejected;
      t "hard links" test_hardlink;
      t "hard link errors" test_hardlink_errors;
      t "remount persistence" test_remount_persistence;
      t "many files in one dir" test_many_files;
      t "space reclaimed" test_space_reclaimed;
      t "ENOSPC handling" test_enospc;
      qcheck_model fresh_fs;
    ]
end
